"""Table II: restore throughput vs prefetching thread count.

Paper: 36 / 38 / 75 / 154 / 207 / 208 / 208 MB/s for 0/1/2/4/6/8/10
threads — linear scaling of parallel OSS channels until the restore
pipeline's CPU side becomes the bottleneck, around six threads.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from repro.workloads import SDBConfig, SDBGenerator

THREAD_COUNTS = [0, 1, 2, 4, 6, 8, 10]


def run_thread_sweep():
    generator = SDBGenerator(
        SDBConfig(table_count=1, initial_table_bytes=4 << 20, version_count=10,
                  duplication_ratio_min=0.84, duplication_ratio_max=0.84,
                  seed=31)
    )
    # Small containers give the event pipeline enough reads (~60) for the
    # startup/tail transient to amortise, as in the paper's runs where a
    # restore touches hundreds of containers.
    store = SlimStore(SlimStoreConfig(reverse_dedup=False,
                                      container_bytes=64 * 1024))
    path = None
    for dataset_version in generator.versions():
        for item in dataset_version.files:
            store.backup(item.path, item.data)
            path = item.path
    results = {}
    for threads in THREAD_COUNTS:
        # Whole-container reads: the paper's Table II measures OSS channel
        # scaling, not the ranged-read optimisation (see the ablation).
        results[threads] = store.restore(
            path, prefetch_threads=threads, verify=False, ranged=False
        )
    return results


def test_table2_prefetch_thread_scaling(benchmark, record):
    results = benchmark.pedantic(run_thread_sweep, rounds=1, iterations=1)

    throughputs = {t: r.throughput_mb_s for t, r in results.items()}
    record(
        "table2_prefetch_threads",
        format_table(
            "Table II: restore throughput vs prefetching thread number",
            ["Prefetching Thread Number", *map(str, THREAD_COUNTS)],
            [["Restore Throughput (MB/s)",
              *(f"{throughputs[t]:.0f}" for t in THREAD_COUNTS)]],
        ),
    )

    # Monotone non-decreasing with threads.
    ordered = [throughputs[t] for t in THREAD_COUNTS]
    for left, right in zip(ordered, ordered[1:]):
        assert right >= left * 0.98
    # Roughly linear early scaling: 4 threads ~2x of 2 threads.
    assert 1.6 <= throughputs[4] / throughputs[2] <= 2.2
    # Saturation by 8 threads: 10 adds (almost) nothing.
    assert throughputs[10] <= 1.05 * throughputs[8]
    # The saturated rate is several times the single-channel rate
    # (paper: 208 vs 36 MB/s).
    assert throughputs[10] >= 4 * throughputs[1]
    # The restored data is byte-correct regardless of thread count.
    reference = results[0].data
    assert all(r.data == reference for r in results.values())
