"""Browse bench: random-access reads vs restoring the whole version.

The point of the L-node block cache is that *touching a few bytes of a
backup should not cost a whole-version restore*.  This bench opens an
aged multi-version file and issues seeded random ranged reads three
ways —

* ``restore``  — the baseline: materialise the whole version, then slice;
* ``cold``     — browse reads against an empty cache (ranged GETs,
  readahead, plan-time redirects);
* ``warm``     — the same reads again, served from the cache

— and records per-read virtual latency, OSS GET counts, and read
amplification (OSS bytes transferred / bytes returned).  The cold path
must amplify strictly below the whole-version baseline, and the warm
path must issue **zero** OSS GETs (amplification ~ 0).  Results land in
``BENCH_browse.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from repro.core.browse import BrowseSession
from tests.conftest import make_version_chain

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2021
FILE_BYTES = 1024 * 1024
VERSIONS = 6
READS = 8
READ_BYTES = 4 * 1024

CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=32 * 1024,
    merge_threshold=3,
    browse_block_bytes=16 * 1024,
    browse_cache_memory_bytes=128 * 1024,
    browse_cache_disk_bytes=256 * 1024,
    browse_readahead_blocks=1,
)


def build_store() -> tuple[SlimStore, list[bytes]]:
    rng = np.random.default_rng(SEED)
    store = SlimStore(CONFIG)
    payloads = make_version_chain(rng, versions=VERSIONS, size=FILE_BYTES)
    for payload in payloads:
        store.backup("vol/f.bin", payload)
    return store, payloads


def sample_offsets(size: int) -> list[int]:
    rng = np.random.default_rng(SEED + 1)
    return sorted(
        int(offset) for offset in rng.integers(0, size - READ_BYTES, READS)
    )


def measure_reads(store: SlimStore, session: BrowseSession,
                  offsets: list[int], version: int) -> dict:
    """Latency/traffic profile of one pass over the sampled offsets."""
    handle = session.open("vol/f.bin", version)
    stats = store.oss.stats
    latencies: list[float] = []
    gets_before = stats.get_requests
    bytes_before = stats.bytes_read
    returned = 0
    for offset in offsets:
        before = stats.read_seconds
        data = handle.read(offset, READ_BYTES)
        latencies.append(stats.read_seconds - before)
        returned += len(data)
    oss_bytes = stats.bytes_read - bytes_before
    return {
        "reads": len(offsets),
        "oss_gets": stats.get_requests - gets_before,
        "oss_bytes_read": oss_bytes,
        "bytes_returned": returned,
        "amplification": oss_bytes / returned,
        "mean_latency_ms": float(np.mean(latencies)) * 1e3,
        "p99_latency_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def test_browse_latency(record):
    store, payloads = build_store()
    version = VERSIONS - 1
    offsets = sample_offsets(len(payloads[version]))

    # Baseline: a whole-version restore serves the same slices.
    stats = store.oss.stats
    gets_before, bytes_before, secs_before = (
        stats.get_requests, stats.bytes_read, stats.read_seconds,
    )
    restored = store.restore("vol/f.bin", version).data
    restore_profile = {
        "oss_gets": stats.get_requests - gets_before,
        "oss_bytes_read": stats.bytes_read - bytes_before,
        "elapsed_ms": (stats.read_seconds - secs_before) * 1e3,
        "amplification": (stats.bytes_read - bytes_before)
        / (READS * READ_BYTES),
    }
    assert restored == payloads[version]

    session = BrowseSession(store)
    cold = measure_reads(store, session, offsets, version)
    warm = measure_reads(store, session, offsets, version)

    # Parity: every browse read returned the restore's bytes (the
    # differential suite covers this exhaustively; the bench spot-checks).
    handle = session.open("vol/f.bin", version)
    for offset in offsets[:4]:
        assert handle.read(offset, READ_BYTES) == restored[offset:offset + READ_BYTES]

    # The headline claims, asserted so CI catches regressions:
    # cold random access transfers strictly less than a whole-version
    # restore, and a warm working set costs zero OSS traffic.
    assert cold["oss_bytes_read"] < restore_profile["oss_bytes_read"]
    assert cold["amplification"] < restore_profile["amplification"]
    assert warm["oss_gets"] == 0
    assert warm["oss_bytes_read"] == 0
    assert warm["amplification"] == 0.0
    assert session.stats.hit_ratio > 0.5

    rows = [
        ["restore-then-slice", str(restore_profile["oss_gets"]),
         str(restore_profile["oss_bytes_read"]),
         f"{restore_profile['amplification']:.2f}",
         f"{restore_profile['elapsed_ms']:.2f}", "-"],
        ["browse cold", str(cold["oss_gets"]), str(cold["oss_bytes_read"]),
         f"{cold['amplification']:.2f}", f"{cold['mean_latency_ms']:.3f}",
         f"{cold['p99_latency_ms']:.3f}"],
        ["browse warm", str(warm["oss_gets"]), str(warm["oss_bytes_read"]),
         f"{warm['amplification']:.2f}", f"{warm['mean_latency_ms']:.3f}",
         f"{warm['p99_latency_ms']:.3f}"],
    ]
    record(
        "browse_latency",
        format_table(
            f"Browse latency: {READS} random {READ_BYTES}-byte reads of an "
            f"aged {FILE_BYTES >> 10} KiB file",
            ["mode", "GETs", "OSS bytes", "amp", "mean ms", "p99 ms"],
            rows,
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_browse.json").write_text(
        json.dumps(
            {
                "seed": SEED,
                "file_bytes": FILE_BYTES,
                "versions": VERSIONS,
                "read_bytes": READ_BYTES,
                "reads": READS,
                "block_bytes": CONFIG.browse_block_bytes,
                "readahead_blocks": CONFIG.browse_readahead_blocks,
                "restore_baseline": restore_profile,
                "cold": cold,
                "warm": warm,
                "cache": session.stats.as_dict(),
            },
            indent=2,
        )
        + "\n"
    )
