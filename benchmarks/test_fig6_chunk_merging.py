"""Fig 6: performance of history-aware chunk merging (SuperChunking).

Paper findings: merging improves dedup throughput, by >20% at duplication
ratio 0.95 (125 -> 155 MB/s) at the cost of only ~0.9% dedup ratio; the
benefit and the average chunk size both grow with the duplication ratio,
while low-duplication files keep small chunks and lose more ratio.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.harness import run_slimstore_series
from repro.bench.reporting import format_table
from repro.workloads import SDBConfig, SDBGenerator

DUP_RATIOS = [0.65, 0.85, 0.95]
#: Versions per run: the merge threshold is 3 here so superchunks form by
#: version 3 and the post-merging steady state covers versions 6-9.
VERSIONS = 10
MERGE_THRESHOLD = 3


def run_merging_sweep():
    outcomes = {}
    for ratio in DUP_RATIOS:
        generator = SDBGenerator(
            SDBConfig(table_count=1, initial_table_bytes=2 << 20,
                      version_count=VERSIONS,
                      duplication_ratio_min=ratio, duplication_ratio_max=ratio,
                      hot_page_fraction=0.08, seed=23)
        )
        versions = generator.versions()
        outcomes[ratio] = {}
        for merging in (False, True):
            config = SlimStoreConfig(
                chunk_merging=merging,
                merge_threshold=MERGE_THRESHOLD,
                min_superchunk_bytes=16 * 1024,
                max_superchunk_bytes=64 * 1024,
                reverse_dedup=False,
                sparse_compaction=False,
            )
            store = SlimStore(config)
            outcomes[ratio][merging] = run_slimstore_series(
                store, versions, run_gnode=False
            )
    return outcomes


def _steady_state(series):
    """Post-merging versions (after the threshold-triggered rewrite)."""
    return series.versions[MERGE_THRESHOLD + 3 :]


def test_fig6_chunk_merging(benchmark, record):
    outcomes = benchmark.pedantic(run_merging_sweep, rounds=1, iterations=1)

    rows = []
    gains = {}
    for ratio in DUP_RATIOS:
        plain = _steady_state(outcomes[ratio][False])
        merged = _steady_state(outcomes[ratio][True])
        plain_tput = sum(s.throughput_mb_s for s in plain) / len(plain)
        merged_tput = sum(s.throughput_mb_s for s in merged) / len(merged)
        plain_ratio = 100 * sum(s.dedup_ratio for s in plain) / len(plain)
        merged_ratio = 100 * sum(s.dedup_ratio for s in merged) / len(merged)
        merged_chunk = sum(
            s.logical_bytes / max(1, s.counters.get("chunks")) for s in merged
        ) / len(merged)
        gains[ratio] = (merged_tput / plain_tput, plain_ratio - merged_ratio)
        rows.append([
            f"{ratio:.2f}", f"{plain_tput:.1f}", f"{merged_tput:.1f}",
            f"{merged_tput / plain_tput:.2f}x",
            f"{plain_ratio:.1f}", f"{merged_ratio:.1f}",
            f"{merged_chunk / 1024:.0f}KB",
        ])
    record(
        "fig6_chunk_merging",
        format_table(
            "Fig 6: history-aware chunk merging vs duplication ratio "
            "(post-merge steady state)",
            ["dup ratio", "no-merge MB/s", "merge MB/s", "gain",
             "no-merge %", "merge %", "avg chunk"],
            rows,
        ),
    )

    # Merging improves throughput, most at high duplication ratios
    # (paper: >1.20x at 0.95; the margin shrinks at this reduced scale
    # because one superchunk re-merge costs proportionally more of a
    # 2 MiB table than of the paper's GB-scale tables).
    assert gains[0.95][0] >= 1.04, gains
    assert gains[0.95][0] > gains[0.65][0]
    # Dedup ratio loss stays bounded at the top ratio (paper: ~0.9%).
    assert gains[0.95][1] < 8.0, gains
    # Average chunk size grows with merging (Fig 6(a)'s red line) and is
    # at least as large for high-duplication files as for low ones.
    def mean_chunk(series):
        steady = _steady_state(series)
        return sum(
            s.logical_bytes / max(1, s.counters.get("chunks")) for s in steady
        ) / len(steady)

    assert mean_chunk(outcomes[0.95][True]) >= mean_chunk(outcomes[0.65][True])
    assert mean_chunk(outcomes[0.95][True]) > 2 * mean_chunk(outcomes[0.95][False])
