"""Wall-clock scaling of the parallel execution engine (host time).

Every other bench in this suite runs on the *virtual* clock — the cost
model charges simulated seconds, so results are deterministic.  This one
deliberately measures real elapsed time: the parallel engine exists to
cut host wall-clock on the ingest CPU stages (CDC boundary scan +
chunk fingerprinting), and only a stopwatch can show that.

Methodology:

* **serial baseline** — the untouched pre-engine path: the chunker's own
  ``boundaries`` scan, then a ``next_cut`` walk fingerprinting every
  chunk with :func:`repro.fingerprint.hashing.fingerprint`.
* **parallel points** — ``ParallelExecutor(w).chunk_and_fingerprint``
  for each worker count in ``WALLCLOCK_WORKERS`` (default ``1,2,4,8``),
  best-of-``ROUNDS`` like the zero-copy microbench.
* **byte identity** — every parallel point must reproduce the serial
  boundary set exactly and every memoised digest must equal the serial
  fingerprint; a fast-but-wrong engine fails here, not in production.

The measured speedups are overlaid against the simulated Fig 10 cluster
curves (``repro.bench.scaling``) so ``BENCH_wallclock.json`` tells both
stories: single-node host-time scaling and cluster virtual-time scaling.

Env knobs (CI uses a generous guard band on a shared 1-2 vCPU runner):

* ``WALLCLOCK_WORKERS`` — comma list of worker counts to measure.
* ``WALLCLOCK_MIN_SPEEDUP`` — required speedup at the >=4-worker point
  (default 2.0, per the engine's acceptance bar).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.scaling import restic_aggregate_throughput, slimstore_backup_scaling
from repro.chunking import make_chunker
from repro.chunking.base import ChunkerParams
from repro.exec import ParallelExecutor
from repro.fingerprint.hashing import fingerprint

RESULTS_DIR = Path(__file__).parent / "results"

ROUNDS = 3
_MB = float(1 << 20)


def _workers() -> list[int]:
    raw = os.environ.get("WALLCLOCK_WORKERS", "1,2,4,8")
    return [int(part) for part in raw.split(",") if part.strip()]


def _min_speedup() -> float:
    return float(os.environ.get("WALLCLOCK_MIN_SPEEDUP", "2.0"))


def _sdb_stream(sdb_small) -> bytes:
    _generator, versions = sdb_small
    return b"".join(f.data for version in versions for f in version.files)


def _serial_chunk_fingerprint(chunker, data: bytes):
    """The pre-engine ingest path, staged for the breakdown."""
    start = time.perf_counter()
    boundary_set = chunker.boundaries(data)
    chunk_seconds = time.perf_counter() - start

    start = time.perf_counter()
    view = memoryview(data)
    digests = {}
    position = 0
    while position < len(data):
        end = boundary_set.next_cut(position)
        digests[(position, end)] = fingerprint(view[position:end])
        position = end
    fingerprint_seconds = time.perf_counter() - start
    return boundary_set, digests, chunk_seconds, fingerprint_seconds


def _best_serial(chunker, data: bytes):
    best_total = float("inf")
    result = None
    for _ in range(ROUNDS):
        boundary_set, digests, chunk_s, fp_s = _serial_chunk_fingerprint(chunker, data)
        if chunk_s + fp_s < best_total:
            best_total = chunk_s + fp_s
            result = (boundary_set, digests, chunk_s, fp_s)
    return result


def _best_parallel(executor, chunker, data: bytes):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        boundary_set, memo = executor.chunk_and_fingerprint(chunker, data)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = (boundary_set, memo)
    return result[0], result[1], best


def _identical(serial_set, serial_digests, parallel_set, memo, data: bytes) -> bool:
    if serial_set.length != parallel_set.length:
        return False
    if not np.array_equal(serial_set._positions, parallel_set._positions):
        return False
    if not np.array_equal(serial_set._strict, parallel_set._strict):
        return False
    # Every span the serial walk visits must carry the serial digest.
    return all(memo.get(span) == digest for span, digest in serial_digests.items())


def test_wallclock_scaling(sdb_small, record):
    data = _sdb_stream(sdb_small)
    chunker = make_chunker("fastcdc", ChunkerParams().scaled(4096))

    serial_set, serial_digests, chunk_s, fp_s = _best_serial(chunker, data)
    serial_total = chunk_s + fp_s

    points = []
    for workers in _workers():
        with ParallelExecutor(workers) as executor:
            parallel_set, memo, elapsed = _best_parallel(executor, chunker, data)
            identical = _identical(serial_set, serial_digests, parallel_set, memo, data)
        points.append(
            {
                "workers": workers,
                "mode": "thread",
                "seconds": elapsed,
                "throughput_mbps": len(data) / elapsed / _MB,
                "speedup_vs_serial": serial_total / elapsed,
                "byte_identical": identical,
            }
        )

    # Simulated Fig 10 overlay: feed the measured single-job profile into
    # the cluster scaling arithmetic (4 L-nodes, first-backup upload).
    jobs_axis = [1, 2, 4, 8, 16, 32]
    overlay = {
        "jobs": jobs_axis,
        "slimstore_mbps": [
            slimstore_backup_scaling(
                len(data), serial_total, len(data), jobs, lnode_count=4
            )
            for jobs in jobs_axis
        ],
        "restic_mbps": [
            restic_aggregate_throughput(
                len(data), serial_total, serial_total * 0.35, jobs
            )
            for jobs in jobs_axis
        ],
    }

    payload = {
        "experiment": "wallclock_scaling",
        "cpu_count": os.cpu_count(),
        "stream_bytes": len(data),
        "chunker": "fastcdc",
        "rounds": ROUNDS,
        "serial": {
            "chunk_seconds": chunk_s,
            "fingerprint_seconds": fp_s,
            "total_seconds": serial_total,
            "throughput_mbps": len(data) / serial_total / _MB,
        },
        "parallel": points,
        "min_speedup_required": _min_speedup(),
        "simulated_fig10": overlay,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_wallclock.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        "Wall-clock scaling: chunk + fingerprint, serial vs parallel engine",
        "=" * 68,
        f"stream: {len(data) / _MB:.1f} MiB S-DB, cpu_count={os.cpu_count()}, "
        f"best of {ROUNDS}",
        f"serial   : {serial_total * 1e3:8.1f} ms "
        f"(chunk {chunk_s * 1e3:.1f} + fingerprint {fp_s * 1e3:.1f}) "
        f"{len(data) / serial_total / _MB:7.1f} MB/s",
    ]
    for point in points:
        lines.append(
            f"workers={point['workers']:<2}: {point['seconds'] * 1e3:8.1f} ms "
            f"{point['throughput_mbps']:7.1f} MB/s  "
            f"speedup {point['speedup_vs_serial']:5.2f}x  "
            f"identical={point['byte_identical']}"
        )
    record("wallclock_scaling", "\n".join(lines))

    # Correctness is unconditional; a fast engine that rewrites the
    # repository is not an optimisation.
    assert all(point["byte_identical"] for point in points)
    # The speedup bar applies at the widest >=4-worker point measured
    # (single-core CI runners keep the bar via WALLCLOCK_MIN_SPEEDUP).
    gated = [p for p in points if p["workers"] >= 4] or points
    best = max(p["speedup_vs_serial"] for p in gated)
    assert best >= _min_speedup(), (
        f"chunk+fingerprint speedup {best:.2f}x below the "
        f"{_min_speedup():.2f}x bar"
    )
