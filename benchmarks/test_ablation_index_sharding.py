"""Ablation: global-index sharding x batched lookups (Section VI-A).

Two halves, one grid (1/4/16 shards x batch on/off):

* **G-dedup index time** — the real system runs a multi-version S-DB
  workload; the reverse-dedup pass resolves every candidate fingerprint
  against the global index either one round trip at a time (the seed's
  behaviour) or through the sharded batched ``get_many`` path, and the
  virtual seconds it charges for index traffic are summed.
* **Cluster ingest makespan** — the event-driven cluster simulator runs
  eight concurrent ingest jobs whose unique fingerprints drain through
  the shared index, one slot per shard, batch size 256 when batching is
  on.  The job's lookup count is taken from a measured backup result.

The seed configuration (one shard, unbatched) is the baseline both
halves must beat.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from repro.core.cluster import ClusterSimulator, JobSpec, ShardedIndexSpec
from repro.sim.cost_model import CostModel
from repro.workloads import SDBConfig, SDBGenerator

GRID = [(1, False), (1, True), (4, False), (4, True), (16, False), (16, True)]
JOBS = 8
BATCH_SIZE = 256


def run_ablation():
    model = CostModel()
    outcomes = {}
    for shards, batched in GRID:
        generator = SDBGenerator(
            SDBConfig(table_count=1, initial_table_bytes=1 << 20,
                      version_count=6, seed=77)
        )
        config = SlimStoreConfig(
            index_shard_count=shards,
            gdedup_batched_lookup=batched,
            index_batch_size=BATCH_SIZE,
            sparse_compaction=False,
        )
        store = SlimStore(config)
        gdedup_index_seconds = 0.0
        duplicates = 0
        lookups_per_job = 0
        for dataset_version in generator.versions():
            for item in dataset_version.files:
                # Durable-index regime: memtables flushed, so every G-dedup
                # lookup is real Rocks-OSS traffic (a big index would not
                # fit in RAM anyway — the case sharding exists for).
                store.storage.global_index.flush()
                report = store.backup(item.path, item.data)
                if not lookups_per_job:
                    lookups_per_job = len(report.result.unique_fps)
                reverse = report.reverse_dedup
                gdedup_index_seconds += (
                    reverse.breakdown.download + reverse.breakdown.index_query
                )
                duplicates += reverse.duplicates_removed

        cluster = ClusterSimulator(
            4, model, slots_per_node=2,
            index_spec=ShardedIndexSpec(
                shard_count=shards,
                batch_size=BATCH_SIZE if batched else 1,
            ),
        )
        job = JobSpec(
            logical_bytes=float(1 << 20), cpu_seconds=0.0, network_bytes=0,
            index_lookups=lookups_per_job,
        )
        run = cluster.run([job] * JOBS)
        outcomes[(shards, batched)] = {
            "gdedup_index_ms": gdedup_index_seconds * 1e3,
            "duplicates": duplicates,
            "makespan_ms": run.makespan_seconds * 1e3,
            "index_rpcs": run.index_rpcs,
        }
    return outcomes


def test_ablation_index_sharding(benchmark, record):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for (shards, batched), o in outcomes.items():
        rows.append([
            shards,
            "on" if batched else "off",
            f"{o['gdedup_index_ms']:.2f}",
            o["duplicates"],
            f"{o['makespan_ms']:.2f}",
            o["index_rpcs"],
        ])
    record(
        "ablation_index_sharding",
        format_table(
            "Global-index sharding x batched lookups "
            "(virtual ms, 8-job cluster ingest)",
            ["shards", "batch", "gdedup index ms", "dups removed",
             "ingest makespan ms", "index rpcs"],
            rows,
        ),
    )

    baseline = outcomes[(1, False)]
    best = outcomes[(16, True)]
    # Reverse dedup finds the same duplicates whatever the index layout.
    assert len({o["duplicates"] for o in outcomes.values()}) == 1
    # Batched sharded lookups beat the seed's unbatched single shard on
    # both virtual G-dedup index time and cluster ingest makespan.
    assert best["gdedup_index_ms"] < baseline["gdedup_index_ms"]
    assert best["makespan_ms"] < baseline["makespan_ms"] / 4
    for shards in (4, 16):
        assert (
            outcomes[(shards, True)]["makespan_ms"]
            < outcomes[(shards, False)]["makespan_ms"]
        )
