"""Fig 2: CPU and network time breakdown of CDC-based deduplication.

Paper findings: for the first backup version the network is the bottleneck
(everything uploads); for subsequent versions CPU takes over, with
chunking consuming ~60% of CPU time under Rabin CDC and ~40% under
FastCDC, fingerprinting most of the rest.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.harness import run_slimstore_series
from repro.bench.reporting import format_table


def run_breakdowns(versions):
    results = {}
    for chunker in ("rabin", "fastcdc"):
        config = SlimStoreConfig(
            chunker=chunker, skip_chunking=False, chunk_merging=False,
            reverse_dedup=False, sparse_compaction=False,
        )
        store = SlimStore(config)
        results[chunker] = run_slimstore_series(store, versions, run_gnode=False)
    return results


def test_fig2_cdc_time_breakdown(benchmark, record, sdb_small):
    _, versions = sdb_small
    results = benchmark.pedantic(run_breakdowns, args=(versions,), rounds=1, iterations=1)

    rows = []
    for chunker, series in results.items():
        for stats in series.versions:
            shares = stats.breakdown.cpu_shares()
            rows.append([
                chunker,
                f"v{stats.version}",
                stats.breakdown.bottleneck(),
                f"{shares['chunking']:.0%}",
                f"{shares['fingerprinting']:.0%}",
                f"{shares['index_query']:.0%}",
                f"{shares['other']:.0%}",
                f"{stats.breakdown.cpu_seconds()*1e3:.1f}",
                f"{max(stats.breakdown.upload, stats.breakdown.download)*1e3:.1f}",
            ])
    record(
        "fig2_breakdown",
        format_table(
            "Fig 2: CPU and network time breakdown of CDC",
            ["CDC", "version", "bottleneck", "chunking", "fingerprint",
             "index", "other", "cpu ms", "net ms"],
            rows,
        ),
    )

    for chunker, series in results.items():
        # Version 0 uploads everything: network dominates (clearly so for
        # the cheap FastCDC chunker; Rabin's expensive scan nearly keeps
        # pace with the uplink, as in the paper's Fig 2 where the v1 bars
        # sit close together).
        first = series.versions[0].breakdown
        network = max(first.upload, first.download)
        if chunker == "fastcdc":
            assert first.bottleneck() == "network"
            assert network > 1.5 * first.cpu_seconds()
        else:
            assert network > 0.85 * first.cpu_seconds()
        # Subsequent versions: the bottleneck flips to CPU (allowing the
        # paper's near-parity for the cheap FastCDC chunker).
        for stats in series.versions[1:]:
            network = max(stats.breakdown.upload, stats.breakdown.download)
            assert stats.breakdown.cpu_seconds() >= 0.80 * network, (
                f"{chunker} v{stats.version} should be (near) CPU-bound"
            )
        assert results["rabin"].versions[-1].breakdown.bottleneck() == "cpu"
    # Chunking's CPU share: ~60% for Rabin, ~40% for FastCDC.
    rabin_share = results["rabin"].versions[-1].breakdown.cpu_shares()["chunking"]
    fastcdc_share = results["fastcdc"].versions[-1].breakdown.cpu_shares()["chunking"]
    assert 0.50 <= rabin_share <= 0.75, rabin_share
    assert 0.25 <= fastcdc_share <= 0.50, fastcdc_share
    assert rabin_share > fastcdc_share
