"""Tests for the OSS storage backends."""

import pytest

from repro.oss.backend import FilesystemBackend, InMemoryBackend


class TestInMemoryBackend:
    def test_put_get_roundtrip(self):
        backend = InMemoryBackend()
        backend.put("a/b", b"hello")
        assert backend.get("a/b") == b"hello"

    def test_get_missing_is_none(self):
        assert InMemoryBackend().get("nope") is None

    def test_overwrite(self):
        backend = InMemoryBackend()
        backend.put("k", b"v1")
        backend.put("k", b"v2")
        assert backend.get("k") == b"v2"

    def test_delete(self):
        backend = InMemoryBackend()
        backend.put("k", b"v")
        assert backend.delete("k") is True
        assert backend.delete("k") is False
        assert backend.get("k") is None

    def test_keys_sorted(self):
        backend = InMemoryBackend()
        for key in ("b", "a", "c"):
            backend.put(key, b"x")
        assert list(backend.keys()) == ["a", "b", "c"]

    def test_size_and_contains(self):
        backend = InMemoryBackend()
        backend.put("k", b"12345")
        assert backend.size("k") == 5
        assert backend.contains("k")
        assert not backend.contains("other")

    def test_total_bytes(self):
        backend = InMemoryBackend()
        backend.put("a", b"12")
        backend.put("b", b"345")
        assert backend.total_bytes() == 5

    def test_put_copies_input(self):
        backend = InMemoryBackend()
        payload = bytearray(b"abc")
        backend.put("k", bytes(payload))
        payload[0] = ord("z")
        assert backend.get("k") == b"abc"


class TestFilesystemBackend:
    def test_roundtrip(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        backend.put("dir/key.bin", b"payload")
        assert backend.get("dir/key.bin") == b"payload"
        assert backend.size("dir/key.bin") == 7

    def test_keys_recursive_sorted(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        backend.put("b/x", b"1")
        backend.put("a/y", b"2")
        assert list(backend.keys()) == ["a/y", "b/x"]

    def test_delete(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        backend.put("k", b"v")
        assert backend.delete("k") is True
        assert backend.get("k") is None
        assert backend.delete("k") is False

    def test_rejects_unsafe_keys(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        with pytest.raises(ValueError):
            backend.put("../escape", b"x")
        with pytest.raises(ValueError):
            backend.put("/absolute", b"x")

    def test_rejects_empty_and_dot_keys(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        with pytest.raises(ValueError):
            backend.put("", b"x")
        with pytest.raises(ValueError):
            backend.put(".", b"x")
        with pytest.raises(ValueError):
            backend.get("")

    def test_total_bytes(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        backend.put("a", b"12")
        backend.put("d/b", b"345")
        assert backend.total_bytes() == 5

    def test_failed_replace_cleans_up_tmp(self, tmp_path, monkeypatch):
        backend = FilesystemBackend(tmp_path)
        backend.put("k", b"old")

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.oss.backend.os.replace", broken_replace)
        with pytest.raises(OSError):
            backend.put("k", b"new")
        monkeypatch.undo()
        # The old object survives and no orphaned temp file remains.
        assert backend.get("k") == b"old"
        assert not list(tmp_path.rglob("*.tmp"))

    def test_atomic_overwrite(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        backend.put("k", b"old")
        backend.put("k", b"new")
        assert backend.get("k") == b"new"
        # No stray temp files left behind.
        assert list(backend.keys()) == ["k"]
