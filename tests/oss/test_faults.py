"""Fault injection and the retrying client, under deterministic schedules."""

import pytest

from repro.errors import ObjectNotFoundError, RetryExhaustedError, TransientOSSError
from repro.oss.faults import FAULT_OPS, FaultPolicy
from repro.oss.object_store import ObjectStorageService
from repro.oss.retry import RetryBudget, RetryingObjectStore, RetryPolicy
from repro.sim.cost_model import CostModel


def make_store(policy: FaultPolicy | None = None) -> ObjectStorageService:
    store = ObjectStorageService(CostModel(), faults=policy)
    store.create_bucket("b")
    return store


class TestFaultPolicyValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPolicy(get_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(torn_write_rate=-0.1)

    def test_outage_rejects_unknown_ops(self):
        policy = FaultPolicy()
        with pytest.raises(ValueError):
            policy.outage({"mutate"})

    def test_fault_ops_cover_policy_fields(self):
        policy = FaultPolicy()
        for op in FAULT_OPS:
            assert hasattr(policy, f"{op}_error_rate")


class TestTransientErrors:
    def test_certain_failure_raises_transient(self):
        store = make_store(FaultPolicy(get_error_rate=1.0))
        with pytest.raises(TransientOSSError):
            store.get_object("b", "k")

    def test_failure_charges_one_round_trip(self):
        store = make_store(FaultPolicy(put_error_rate=1.0))
        before = store.clock.now
        with pytest.raises(TransientOSSError):
            store.put_object("b", "k", b"data")
        assert store.clock.now == pytest.approx(
            before + store.cost_model.oss_request_latency
        )
        # Nothing was persisted by a plain transient failure.
        assert store.peek_size("b", "k") is None

    def test_stats_mirrored_into_oss_stats(self):
        store = make_store(FaultPolicy(get_error_rate=1.0))
        with pytest.raises(TransientOSSError):
            store.get_object("b", "k")
        assert store.faults.stats.transient_errors == 1
        assert store.stats.faults_injected == 1

    def test_no_policy_means_no_faults(self):
        store = make_store(None)
        store.put_object("b", "k", b"data")
        assert store.get_object("b", "k") == b"data"
        assert store.stats.faults_injected == 0


class TestDeterminism:
    def run_schedule(self, seed: int) -> tuple[list[str], int]:
        policy = FaultPolicy(seed=seed, get_error_rate=0.3, put_error_rate=0.2)
        store = make_store(policy)
        outcomes = []
        for i in range(50):
            try:
                store.put_object("b", f"k{i}", b"x" * 32)
                outcomes.append("put-ok")
            except TransientOSSError:
                outcomes.append("put-fail")
            try:
                store.get_object("b", f"k{i}")
                outcomes.append("get-ok")
            except (TransientOSSError, ObjectNotFoundError):
                outcomes.append("get-fail")
        return outcomes, policy.stats.faults_injected

    def test_same_seed_same_schedule(self):
        first, faults_first = self.run_schedule(seed=7)
        second, faults_second = self.run_schedule(seed=7)
        assert first == second
        assert faults_first == faults_second
        assert faults_first > 0

    def test_different_seed_different_schedule(self):
        first, _ = self.run_schedule(seed=7)
        second, _ = self.run_schedule(seed=8)
        assert first != second


class TestTornWrites:
    def test_torn_put_persists_prefix_and_raises(self):
        store = make_store(FaultPolicy(torn_write_rate=1.0))
        data = bytes(range(256))
        with pytest.raises(TransientOSSError):
            store.put_object("b", "k", data)
        assert store.faults.stats.torn_writes == 1
        torn = store.peek_size("b", "k")
        assert torn is not None and 0 < torn < len(data)
        # A retried PUT (no tear this time) heals the truncated object.
        store.set_fault_policy(None)
        store.put_object("b", "k", data)
        assert store.get_object("b", "k") == data

    def test_tiny_payloads_never_tear(self):
        store = make_store(FaultPolicy(torn_write_rate=1.0))
        store.put_object("b", "k", b"x")
        assert store.get_object("b", "k") == b"x"


class TestCorruptReads:
    def test_read_is_bit_flipped_not_truncated(self):
        store = make_store(None)
        data = bytes(range(256))
        store.put_object("b", "k", data)
        store.set_fault_policy(FaultPolicy(corrupt_read_rate=1.0))
        got = store.get_object("b", "k")
        assert len(got) == len(data)
        assert got != data
        # Exactly one bit differs.
        diff = [a ^ b for a, b in zip(got, data) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1
        assert store.faults.stats.corrupt_reads == 1
        assert store.stats.faults_injected == 1
        # The stored object itself is untouched.
        store.set_fault_policy(None)
        assert store.get_object("b", "k") == data

    def test_ranged_reads_also_corrupt(self):
        store = make_store(None)
        store.put_object("b", "k", bytes(range(128)))
        store.set_fault_policy(FaultPolicy(corrupt_read_rate=1.0))
        got = store.get_range("b", "k", 16, 64)
        assert len(got) == 64
        assert got != bytes(range(16, 80))

    def test_get_ranges_spans_share_the_corruption_path(self):
        """Regression: multi-span GETs run each span through the same
        bit-flip filter as whole-object GETs — spans are not a loophole."""
        store = make_store(None)
        data = bytes(range(256))
        store.put_object("b", "k", data)
        store.set_fault_policy(FaultPolicy(corrupt_read_rate=1.0))
        spans = [(0, 64), (64, 64), (200, 56)]
        chunks = store.get_ranges("b", "k", spans)
        assert [len(chunk) for chunk in chunks] == [64, 64, 56]
        # Every span is independently flipped: one bit each, right length.
        for (offset, length), chunk in zip(spans, chunks):
            expected = data[offset : offset + length]
            diff = [a ^ b for a, b in zip(chunk, expected) if a != b]
            assert len(diff) == 1 and bin(diff[0]).count("1") == 1
        assert store.faults.stats.corrupt_reads == len(spans)
        # The stored object is untouched once the policy is lifted.
        store.set_fault_policy(None)
        assert store.get_ranges("b", "k", spans) == [
            data[o : o + n] for o, n in spans
        ]


class TestLatencySpikes:
    def test_spike_charged_to_virtual_clock(self):
        spike = 0.25
        plain = make_store(None)
        spiky = make_store(
            FaultPolicy(latency_spike_rate=1.0, latency_spike_seconds=spike)
        )
        for store in (plain, spiky):
            store.put_object("b", "k", b"x" * 1024)
        assert spiky.clock.now == pytest.approx(plain.clock.now + spike)
        assert spiky.faults.stats.latency_spikes == 1
        assert spiky.faults.stats.latency_injected_seconds == pytest.approx(spike)


class TestKillSwitchAndOutage:
    def test_kill_after_n_requests(self):
        store = make_store(FaultPolicy(kill_after_requests=2))
        store.put_object("b", "k0", b"x")
        store.put_object("b", "k1", b"x")
        assert not store.faults.is_killed
        with pytest.raises(TransientOSSError):
            store.put_object("b", "k2", b"x")
        assert store.faults.is_killed
        assert store.faults.stats.killed_requests == 1
        store.faults.revive()
        store.put_object("b", "k2", b"x")
        assert store.get_object("b", "k2") == b"x"

    def test_partial_outage_fails_only_selected_ops(self):
        store = make_store(FaultPolicy())
        store.put_object("b", "k", b"x")
        store.faults.outage({"get"})
        with pytest.raises(TransientOSSError):
            store.get_object("b", "k")
        store.put_object("b", "k2", b"y")  # writes still drain
        store.faults.revive()
        assert store.get_object("b", "k") == b"x"


class TestFaultDomains:
    def test_key_fault_domain_mapping(self):
        from repro.oss.faults import key_fault_domain

        # Container payloads land on cid % domains.
        assert key_fault_domain("containers/000000000004.data", 3) == 1
        assert key_fault_domain("containers/000000000006.data", 3) == 0
        # Durability copies and parity land on their d<N>/ prefix.
        assert key_fault_domain("durability/d2/000000000007.copy0", 3) == 2
        assert key_fault_domain("durability/d1/stripe00000003.p0", 3) == 1
        # Control plane (meta, journal, manifests) has no domain.
        assert key_fault_domain("containers/000000000004.meta", 3) is None
        assert key_fault_domain("durability/records/000000000004.json", 3) is None
        assert key_fault_domain("journal/000001.json", 3) is None
        # Disabled mapping: everything is domainless.
        assert key_fault_domain("containers/000000000004.data", 0) is None

    def test_domain_outage_only_fails_that_domain(self):
        policy = FaultPolicy(fault_domains=3)
        store = make_store(policy)
        for cid in range(3):
            store.put_object("b", f"containers/{cid:012d}.data", b"x")
            store.put_object("b", f"containers/{cid:012d}.meta", b"m")
        policy.outage({"get"}, domain=1)
        # Domain 1's payload is down; other domains and the control
        # plane (.meta keys map to no domain) keep serving.
        with pytest.raises(TransientOSSError):
            store.get_object("b", "containers/000000000001.data")
        assert store.get_object("b", "containers/000000000000.data") == b"x"
        assert store.get_object("b", "containers/000000000002.data") == b"x"
        assert store.get_object("b", "containers/000000000001.meta") == b"m"
        # Writes into the domain still fail only for the chosen ops.
        store.put_object("b", "containers/000000000001.data", b"y")

    def test_domain_outages_stack_and_revive_individually(self):
        policy = FaultPolicy(fault_domains=3)
        store = make_store(policy)
        store.put_object("b", "durability/d0/000000000001.copy0", b"a")
        store.put_object("b", "durability/d1/000000000001.copy1", b"b")
        policy.outage({"get"}, domain=0)
        policy.outage({"get"}, domain=1)
        with pytest.raises(TransientOSSError):
            store.get_object("b", "durability/d0/000000000001.copy0")
        with pytest.raises(TransientOSSError):
            store.get_object("b", "durability/d1/000000000001.copy1")
        policy.revive(domain=0)
        assert store.get_object("b", "durability/d0/000000000001.copy0") == b"a"
        with pytest.raises(TransientOSSError):
            store.get_object("b", "durability/d1/000000000001.copy1")
        policy.revive()  # bare revive lifts everything
        assert store.get_object("b", "durability/d1/000000000001.copy1") == b"b"

    def test_domain_outage_validation(self):
        policy = FaultPolicy()  # fault_domains defaults to 0
        with pytest.raises(ValueError):
            policy.outage({"get"}, domain=0)
        scoped = FaultPolicy(fault_domains=3)
        with pytest.raises(ValueError):
            scoped.outage({"get"}, domain=3)
        with pytest.raises(ValueError):
            scoped.outage({"get"}, domain=-1)
        with pytest.raises(ValueError):
            FaultPolicy(fault_domains=-1)


class TestRetryPolicyValidation:
    def test_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_bad_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_budget_seconds=-1.0)


class TestRetryingObjectStore:
    def test_absorbs_intermittent_faults(self):
        store = make_store(FaultPolicy(seed=3, get_error_rate=0.3, put_error_rate=0.3))
        client = RetryingObjectStore(store, RetryPolicy(seed=3))
        for i in range(60):
            client.put_object("b", f"k{i}", bytes([i]) * 64)
        for i in range(60):
            assert client.get_object("b", f"k{i}") == bytes([i]) * 64
        assert client.retry_stats.retries > 0
        assert client.retry_stats.recovered_operations > 0
        assert client.retry_stats.exhausted_operations == 0
        assert store.stats.retries_attempted == client.retry_stats.retries

    def test_torn_writes_healed_by_retry(self):
        store = make_store(FaultPolicy(seed=5, torn_write_rate=0.4))
        client = RetryingObjectStore(store, RetryPolicy(seed=5))
        payloads = {f"k{i}": bytes([i]) * 256 for i in range(40)}
        for key, data in payloads.items():
            client.put_object("b", key, data)
        assert store.faults.stats.torn_writes > 0
        store.set_fault_policy(None)
        for key, data in payloads.items():
            assert client.get_object("b", key) == data

    def test_exhaustion_raises_with_cause(self):
        store = make_store(FaultPolicy(get_error_rate=1.0))
        client = RetryingObjectStore(store, RetryPolicy(max_attempts=4))
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.get_object("b", "k")
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.__cause__, TransientOSSError)
        assert client.retry_stats.exhausted_operations == 1

    def test_backoff_charged_to_virtual_clock(self):
        store = make_store(FaultPolicy(get_error_rate=1.0))
        client = RetryingObjectStore(
            store, RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)
        )
        with pytest.raises(RetryExhaustedError):
            client.get_object("b", "k")
        slept = client.retry_stats.backoff_seconds
        assert slept >= 4 * 0.1  # four backoffs between five attempts
        failed_latency = 5 * store.cost_model.oss_request_latency
        assert store.clock.now == pytest.approx(slept + failed_latency)

    def test_backoff_budget_bounds_total_sleep(self):
        store = make_store(FaultPolicy(get_error_rate=1.0))
        client = RetryingObjectStore(
            store,
            RetryPolicy(
                max_attempts=1000,
                base_delay=0.5,
                max_delay=2.0,
                backoff_budget_seconds=1.0,
            ),
        )
        with pytest.raises(RetryExhaustedError):
            client.get_object("b", "k")
        assert client.retry_stats.backoff_seconds <= 1.0 + 1e-9
        assert client.retry_stats.retries < 1000

    def test_delegates_non_operations(self):
        store = make_store(None)
        client = RetryingObjectStore(store)
        client.create_bucket("other")
        assert client.bucket_names() == ["b", "other"]
        assert client.clock is store.clock
        assert client.stats is store.stats

    def test_not_found_is_not_retried(self):
        store = make_store(None)
        client = RetryingObjectStore(store)
        with pytest.raises(ObjectNotFoundError):
            client.get_object("b", "missing")
        assert client.retry_stats.retries == 0


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0)
        with pytest.raises(ValueError):
            RetryBudget(refill_per_second=-1.0)

    def test_spend_and_refill(self):
        budget = RetryBudget(capacity=2.0, refill_per_second=1.0)
        assert budget.try_spend(0.0)
        assert budget.try_spend(0.0)
        assert not budget.try_spend(0.0)  # dry
        assert budget.denied == 1
        assert budget.try_spend(1.5)  # 1.5 tokens refilled
        assert budget.available(1.5) == pytest.approx(0.5)
        # Refill caps at capacity.
        assert budget.available(1000.0) == pytest.approx(2.0)

    def test_exhaustion_fails_fast_into_degraded_mode(self):
        """A dry budget turns the next retry into an immediate
        RetryExhaustedError instead of a backoff sleep — the degraded-mode
        signal the dedup engine already survives."""
        store = make_store(FaultPolicy(get_error_rate=1.0))
        budget = RetryBudget(capacity=3.0, refill_per_second=0.0)
        client = RetryingObjectStore(
            store, RetryPolicy(max_attempts=100), budget=budget
        )
        before = store.clock.now
        with pytest.raises(RetryExhaustedError):
            client.get_object("b", "k")  # spends all 3 tokens, then denied
        assert client.retry_stats.retries == 3
        with pytest.raises(RetryExhaustedError):
            client.get_object("b", "k")  # budget dry: no retries at all
        assert client.retry_stats.retries == 3
        assert client.retry_stats.budget_denied == 2
        assert client.retry_stats.exhausted_operations == 2
        assert budget.denied == 2
        # The denied operation paid only its own request latency, no backoff.
        assert store.clock.now - before < 3 * 2.0 + 2 * store.cost_model.oss_request_latency

    def test_budget_shared_across_clients(self):
        """N clients hammering one degraded endpoint drain ONE bucket:
        aggregate retry volume is bounded by the budget, not N times it."""
        store = make_store(FaultPolicy(get_error_rate=1.0))
        budget = RetryBudget(capacity=5.0, refill_per_second=0.0)
        clients = [
            RetryingObjectStore(store, RetryPolicy(max_attempts=100, seed=i), budget=budget)
            for i in range(4)
        ]
        for client in clients:
            with pytest.raises(RetryExhaustedError):
                client.get_object("b", "k")
        total_retries = sum(c.retry_stats.retries for c in clients)
        assert total_retries == 5
        # Every operation ended on a budget denial (the drainer's last
        # attempt included), so aggregate retries stayed at the budget.
        assert sum(c.retry_stats.budget_denied for c in clients) == 4

    def test_refill_uses_virtual_time(self):
        """Tokens come back as the virtual clock advances, so a budget
        throttles bursts without permanently disabling retries."""
        store = make_store(FaultPolicy(seed=7, get_error_rate=0.4))
        budget = RetryBudget(capacity=2.0, refill_per_second=10.0)
        client = RetryingObjectStore(
            store, RetryPolicy(seed=7, base_delay=0.1), budget=budget
        )
        store.put_object("b", "k", b"x" * 64)
        store.set_fault_policy(FaultPolicy(seed=7, get_error_rate=0.4))
        for _ in range(50):
            assert client.get_object("b", "k") == b"x" * 64
        assert client.retry_stats.retries > 0
        assert client.retry_stats.budget_denied == 0  # refill kept pace

    def test_unbudgeted_client_unchanged(self):
        store = make_store(FaultPolicy(seed=3, get_error_rate=0.3))
        client = RetryingObjectStore(store, RetryPolicy(seed=3))
        for i in range(30):
            client.put_object("b", f"k{i}", bytes([i]) * 64)
        assert client.retry_stats.budget_denied == 0
        assert client.retry_stats.exhausted_operations == 0


class TestCrashPoints:
    def test_crash_fires_at_the_armed_write_index(self):
        from repro.errors import SimulatedCrashError

        policy = FaultPolicy()
        store = make_store(policy)
        policy.crash_after_writes(2)
        store.put_object("b", "k0", b"a")
        store.put_object("b", "k1", b"b")
        with pytest.raises(SimulatedCrashError) as excinfo:
            store.put_object("b", "k2", b"c")
        assert excinfo.value.write_index == 2
        # The crashing write never reached the backend.
        assert store.peek_size("b", "k2") is None
        assert store.peek_size("b", "k1") == 1

    def test_deletes_count_as_writes(self):
        from repro.errors import SimulatedCrashError

        policy = FaultPolicy()
        store = make_store(policy)
        store.put_object("b", "victim", b"x")
        policy.crash_after_writes(0)
        with pytest.raises(SimulatedCrashError):
            store.delete_object("b", "victim")
        assert store.peek_size("b", "victim") == 1

    def test_dead_node_fails_every_subsequent_request(self):
        from repro.errors import SimulatedCrashError

        policy = FaultPolicy()
        store = make_store(policy)
        store.put_object("b", "k", b"x")
        policy.crash_after_writes(0)
        with pytest.raises(SimulatedCrashError):
            store.put_object("b", "k2", b"y")
        assert policy.has_crashed
        # Reads die too: the process is gone, not just one write.
        with pytest.raises(SimulatedCrashError):
            store.get_object("b", "k")
        policy.clear_crash()
        assert store.get_object("b", "k") == b"x"

    def test_crash_is_not_a_transient_error(self):
        from repro.errors import SimulatedCrashError

        policy = FaultPolicy()
        store = make_store(policy)
        client = RetryingObjectStore(store, RetryPolicy(max_attempts=5))
        policy.crash_after_writes(0)
        # The retry layer must not absorb node death and retry into it.
        assert not issubclass(SimulatedCrashError, TransientOSSError)
        with pytest.raises(SimulatedCrashError):
            client.put_object("b", "k", b"x")
        assert client.retry_stats.retries == 0

    def test_probe_run_counts_writes_without_crashing(self):
        policy = FaultPolicy()
        store = make_store(policy)
        store.put_object("b", "k0", b"a")
        store.get_object("b", "k0")  # reads do not advance the write index
        store.delete_object("b", "k0")
        assert policy.writes_seen == 2
        assert not policy.has_crashed

    def test_crash_does_not_charge_virtual_time(self):
        from repro.errors import SimulatedCrashError

        policy = FaultPolicy()
        store = make_store(policy)
        policy.crash_after_writes(0)
        before = store.clock.now
        with pytest.raises(SimulatedCrashError):
            store.put_object("b", "k", b"x")
        assert store.clock.now == before
        assert policy.stats.crash_faults == 1
        assert store.stats.faults_injected == 1
