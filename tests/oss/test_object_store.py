"""Tests for the simulated Object Storage Service."""

import pytest

from repro.errors import BucketNotFoundError, ObjectNotFoundError
from repro.oss.backend import InMemoryBackend
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel


@pytest.fixture
def store() -> ObjectStorageService:
    service = ObjectStorageService(CostModel())
    service.create_bucket("test")
    return service


class TestBuckets:
    def test_create_is_idempotent(self, store):
        store.create_bucket("test")
        assert store.bucket_names() == ["test"]

    def test_missing_bucket_raises(self, store):
        with pytest.raises(BucketNotFoundError):
            store.get_object("ghost", "k")


class TestObjectOperations:
    def test_put_get_roundtrip(self, store):
        store.put_object("test", "key", b"data")
        assert store.get_object("test", "key") == b"data"

    def test_get_missing_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get_object("test", "missing")

    def test_get_range(self, store):
        store.put_object("test", "key", b"0123456789")
        assert store.get_range("test", "key", 2, 3) == b"234"

    def test_get_range_bounds_checked(self, store):
        store.put_object("test", "key", b"0123")
        with pytest.raises(ValueError):
            store.get_range("test", "key", 2, 10)
        with pytest.raises(ValueError):
            store.get_range("test", "key", -1, 2)

    def test_delete(self, store):
        store.put_object("test", "key", b"data")
        assert store.delete_object("test", "key") is True
        assert store.delete_object("test", "key") is False

    def test_list_with_prefix(self, store):
        store.put_object("test", "a/1", b"x")
        store.put_object("test", "a/2", b"x")
        store.put_object("test", "b/1", b"x")
        assert store.list_objects("test", "a/") == ["a/1", "a/2"]

    def test_head_and_exists(self, store):
        store.put_object("test", "key", b"12345")
        assert store.head_object("test", "key") == 5
        assert store.object_exists("test", "key")
        assert not store.object_exists("test", "other")


class TestVirtualTimeCharging:
    def test_put_advances_clock(self, store):
        before = store.clock.now
        store.put_object("test", "key", b"x" * (1 << 20))
        model = store.cost_model
        expected = model.oss_request_latency + (1 << 20) / model.oss_write_bandwidth
        assert store.clock.now - before == pytest.approx(expected)

    def test_piggyback_put_charges_no_latency(self, store):
        store.put_object("test", "main", b"x")
        before = store.clock.now
        store.put_object("test", "meta", b"y" * 1000, piggyback=True)
        charged = store.clock.now - before
        assert charged == pytest.approx(1000 / store.cost_model.oss_write_bandwidth)

    def test_get_advances_clock(self, store):
        store.put_object("test", "key", b"x" * (1 << 20))
        before = store.clock.now
        store.get_object("test", "key")
        model = store.cost_model
        expected = model.oss_request_latency + (1 << 20) / model.oss_read_bandwidth
        assert store.clock.now - before == pytest.approx(expected)

    def test_multichannel_get_is_faster(self, store):
        store.put_object("test", "key", b"x" * (4 << 20))
        t0 = store.clock.now
        store.get_object("test", "key", channels=1)
        single = store.clock.now - t0
        t1 = store.clock.now
        store.get_object("test", "key", channels=4)
        quad = store.clock.now - t1
        assert quad < single / 2

    def test_peek_is_free(self, store):
        store.put_object("test", "key", b"data")
        before = store.clock.now
        assert store.peek_size("test", "key") == 4
        assert store.peek_keys("test") == ["key"]
        assert store.clock.now == before


class TestStats:
    def test_traffic_accounting(self, store):
        store.put_object("test", "k", b"x" * 100)
        store.get_object("test", "k")
        store.get_range("test", "k", 0, 10)
        assert store.stats.put_requests == 1
        assert store.stats.get_requests == 2
        assert store.stats.bytes_written == 100
        assert store.stats.bytes_read == 110

    def test_snapshot_diff(self, store):
        store.put_object("test", "k", b"x" * 100)
        snapshot = store.stats.snapshot()
        store.get_object("test", "k")
        delta = store.stats.diff(snapshot)
        assert delta.get_requests == 1
        assert delta.put_requests == 0
        assert delta.bytes_read == 100

    def test_total_bytes(self, store):
        store.put_object("test", "a", b"12")
        store.put_object("test", "b", b"345")
        assert store.total_bytes() == 5
        assert store.bucket_bytes("test") == 5


class TestBackendFactory:
    def test_named_factory_receives_bucket_name(self):
        seen = []

        def factory(name):
            seen.append(name)
            return InMemoryBackend()

        store = ObjectStorageService(backend_factory=factory)
        store.create_bucket("alpha")
        assert seen == ["alpha"]

    def test_no_arg_factory_supported(self):
        store = ObjectStorageService(backend_factory=InMemoryBackend)
        store.create_bucket("alpha")
        store.put_object("alpha", "k", b"v")
        assert store.get_object("alpha", "k") == b"v"

    def test_factory_type_errors_propagate(self):
        def factory(name):
            raise TypeError("broken factory internals")

        store = ObjectStorageService(backend_factory=factory)
        with pytest.raises(TypeError, match="broken factory internals"):
            store.create_bucket("alpha")
