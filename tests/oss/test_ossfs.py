"""Tests for the OSSFS file-system adapter."""

import pytest

from repro.oss.object_store import ObjectStorageService
from repro.oss.ossfs import OssFileSystem


@pytest.fixture
def fs() -> OssFileSystem:
    return OssFileSystem(ObjectStorageService(), "repo")


class TestOssFileSystem:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("/data/file.bin", b"payload")
        assert fs.read_file("/data/file.bin") == b"payload"

    def test_read_missing_raises_file_not_found(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_file("missing")

    def test_read_range(self, fs):
        fs.write_file("f", b"0123456789")
        assert fs.read_range("f", 3, 4) == b"3456"

    def test_read_range_missing_raises(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_range("missing", 0, 1)

    def test_exists_and_delete(self, fs):
        fs.write_file("f", b"x")
        assert fs.exists("f")
        assert fs.delete_file("f") is True
        assert not fs.exists("f")
        assert fs.delete_file("f") is False

    def test_list_dir(self, fs):
        fs.write_file("dir/a", b"1")
        fs.write_file("dir/b", b"2")
        fs.write_file("other/c", b"3")
        assert fs.list_dir("dir") == ["dir/a", "dir/b"]

    def test_file_size(self, fs):
        fs.write_file("f", b"12345")
        assert fs.file_size("f") == 5
        with pytest.raises(FileNotFoundError):
            fs.file_size("missing")

    def test_leading_slash_normalised(self, fs):
        fs.write_file("/f", b"x")
        assert fs.read_file("f") == b"x"

    def test_every_touch_costs_a_request(self, fs):
        oss = fs._oss
        before = oss.stats.get_requests + oss.stats.put_requests
        fs.write_file("f", b"x")
        fs.read_file("f")
        after = oss.stats.get_requests + oss.stats.put_requests
        assert after - before == 2
