"""Tests for the OSSFS file-system adapter."""

import pytest

from repro.oss.object_store import ObjectStorageService
from repro.oss.ossfs import OssFileSystem


@pytest.fixture
def fs() -> OssFileSystem:
    return OssFileSystem(ObjectStorageService(), "repo")


class TestOssFileSystem:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("/data/file.bin", b"payload")
        assert fs.read_file("/data/file.bin") == b"payload"

    def test_read_missing_raises_file_not_found(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_file("missing")

    def test_read_range(self, fs):
        fs.write_file("f", b"0123456789")
        assert fs.read_range("f", 3, 4) == b"3456"

    def test_read_range_missing_raises(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_range("missing", 0, 1)

    def test_read_range_clamps_short_tail(self, fs):
        fs.write_file("f", b"0123456789")
        assert fs.read_range("f", 7, 100) == b"789"

    def test_read_range_at_eof_is_empty(self, fs):
        fs.write_file("f", b"0123456789")
        assert fs.read_range("f", 10, 5) == b""

    def test_read_range_past_eof_raises(self, fs):
        fs.write_file("f", b"0123456789")
        with pytest.raises(ValueError):
            fs.read_range("f", 11, 1)
        with pytest.raises(ValueError):
            fs.read_range("f", 11, 0)

    def test_read_range_negative_arguments_raise(self, fs):
        fs.write_file("f", b"0123456789")
        with pytest.raises(ValueError):
            fs.read_range("f", -1, 4)
        with pytest.raises(ValueError):
            fs.read_range("f", 0, -4)

    def test_read_range_zero_length_inside_file(self, fs):
        fs.write_file("f", b"0123456789")
        assert fs.read_range("f", 3, 0) == b""

    def test_exists_and_delete(self, fs):
        fs.write_file("f", b"x")
        assert fs.exists("f")
        assert fs.delete_file("f") is True
        assert not fs.exists("f")
        assert fs.delete_file("f") is False

    def test_list_dir(self, fs):
        fs.write_file("dir/a", b"1")
        fs.write_file("dir/b", b"2")
        fs.write_file("other/c", b"3")
        assert fs.list_dir("dir") == ["dir/a", "dir/b"]

    def test_file_size(self, fs):
        fs.write_file("f", b"12345")
        assert fs.file_size("f") == 5
        with pytest.raises(FileNotFoundError):
            fs.file_size("missing")

    def test_leading_slash_normalised(self, fs):
        fs.write_file("/f", b"x")
        assert fs.read_file("f") == b"x"

    def test_every_touch_costs_a_request(self, fs):
        oss = fs._oss
        before = oss.stats.get_requests + oss.stats.put_requests
        fs.write_file("f", b"x")
        fs.read_file("f")
        after = oss.stats.get_requests + oss.stats.put_requests
        assert after - before == 2


class TestBrowseFileSystem:
    """The mount-like facade over backup versions (write-back commits)."""

    @pytest.fixture
    def mounted(self):
        from repro import BrowseFileSystem, BrowseSession, SlimStore

        store = SlimStore()
        store.backup("vol/a.txt", b"hello world " * 1000)
        store.backup("vol/b.txt", b"second file")
        return store, BrowseFileSystem(BrowseSession(store))

    def test_read_file_and_range(self, mounted):
        _, bfs = mounted
        content = b"hello world " * 1000
        assert bfs.read_file("vol/a.txt") == content
        assert bfs.read_range("vol/a.txt", 6, 5) == b"world"
        assert bfs.read_range("/vol/a.txt", len(content) - 4, 100) == content[-4:]
        assert bfs.read_range("vol/a.txt", len(content), 5) == b""
        with pytest.raises(ValueError):
            bfs.read_range("vol/a.txt", len(content) + 1, 1)

    def test_missing_raises_file_not_found(self, mounted):
        _, bfs = mounted
        with pytest.raises(FileNotFoundError):
            bfs.read_file("vol/nope")
        with pytest.raises(FileNotFoundError):
            bfs.read_file("vol/a.txt", version=9)

    def test_exists_list_dir_and_versions(self, mounted):
        _, bfs = mounted
        assert bfs.exists("vol/a.txt") and not bfs.exists("vol/zzz")
        assert bfs.list_dir("vol") == ["vol/a.txt", "vol/b.txt"]
        assert bfs.versions("vol/a.txt") == [0]

    def test_write_file_commits_on_flush(self, mounted):
        store, bfs = mounted
        bfs.write_file("vol/a.txt", b"replaced")
        assert bfs.read_file("vol/a.txt") == b"replaced"  # write-back view
        assert store.restore("vol/a.txt").data != b"replaced"  # not yet
        reports = bfs.flush()
        assert [r.path for r in reports] == ["vol/a.txt"]
        assert store.restore("vol/a.txt").data == b"replaced"
        assert bfs.versions("vol/a.txt") == [0, 1]

    def test_write_range_and_stat(self, mounted):
        store, bfs = mounted
        assert bfs.write_range("vol/b.txt", 7, b"edit") == 4
        assert bfs.stat("vol/b.txt").dirty
        bfs.flush("vol/b.txt")
        assert store.restore("vol/b.txt").data == b"second edit"
        assert not bfs.stat("vol/b.txt").dirty
