"""FilesystemBackend under concurrent ranged readers.

The old ranged path read whole files through a fresh handle per call; the
pread rewrite shares descriptors across threads, which is only safe
because pread carries its own offset — these tests hammer that property
and the fd-cache invalidation around ``put``/``delete`` (``os.replace``
swaps the inode, so a stale descriptor would keep serving old bytes).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.oss.backend import FilesystemBackend


@pytest.fixture
def backend(tmp_path) -> FilesystemBackend:
    backend = FilesystemBackend(tmp_path / "bucket")
    yield backend
    backend.close()


def test_get_range_reads_the_right_bytes(backend):
    payload = bytes(range(256)) * 100
    backend.put("obj", payload)
    assert backend.get_range("obj", 0, 10) == payload[:10]
    assert backend.get_range("obj", 1000, 256) == payload[1000:1256]
    assert backend.get_range("obj", len(payload) - 5, 5) == payload[-5:]
    assert backend.get_range("missing", 0, 10) is None


def test_concurrent_readers_share_one_descriptor(backend):
    """64 threads x 50 ranged reads of one object, all byte-exact.

    With seek+read this interleaving corrupts results (the seek state is
    shared); with pread every read is positionally independent.
    """
    rng = np.random.default_rng(2026)
    payload = rng.integers(0, 256, size=1 << 20, dtype=np.uint8).tobytes()
    backend.put("container", payload)
    spans = [
        (int(offset), int(length))
        for offset, length in zip(
            rng.integers(0, (1 << 20) - 4096, size=200),
            rng.integers(1, 4096, size=200),
        )
    ]

    def reader(worker: int) -> bool:
        for offset, length in spans[worker % 50 :: 4]:
            if backend.get_range("container", offset, length) != payload[offset : offset + length]:
                return False
        return True

    with ThreadPoolExecutor(max_workers=64) as pool:
        assert all(pool.map(reader, range(64)))


def test_put_invalidates_cached_descriptor(backend):
    backend.put("obj", b"a" * 1000)
    assert backend.get_range("obj", 0, 4) == b"aaaa"
    # os.replace swaps the inode under the cached descriptor.
    backend.put("obj", b"b" * 1000)
    assert backend.get_range("obj", 0, 4) == b"bbbb"


def test_delete_invalidates_cached_descriptor(backend):
    backend.put("obj", b"payload")
    assert backend.get_range("obj", 0, 7) == b"payload"
    assert backend.delete("obj")
    assert backend.get_range("obj", 0, 7) is None


def test_fd_cache_evicts_beyond_capacity(backend):
    for index in range(backend._FD_CACHE_SIZE + 40):
        backend.put(f"obj/{index:04d}", f"payload-{index:04d}".encode())
    for index in range(backend._FD_CACHE_SIZE + 40):
        expected = f"payload-{index:04d}".encode()
        assert backend.get_range(f"obj/{index:04d}", 0, len(expected)) == expected
    assert len(backend._fds) <= backend._FD_CACHE_SIZE


def test_close_then_reuse_reopens(backend):
    backend.put("obj", b"still here")
    assert backend.get_range("obj", 0, 5) == b"still"
    backend.close()
    assert backend.get_range("obj", 6, 4) == b"here"


def test_default_get_range_on_in_memory_backend():
    from repro.oss.backend import InMemoryBackend

    backend = InMemoryBackend()
    backend.put("k", b"0123456789")
    assert backend.get_range("k", 2, 5) == b"23456"
    assert backend.get_range("absent", 0, 1) is None
