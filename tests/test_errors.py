"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.ObjectNotFoundError,
            errors.BucketNotFoundError,
            errors.ChunkingError,
            errors.RecipeError,
            errors.ContainerError,
            errors.RestoreError,
            errors.IntegrityError,
            errors.KVStoreError,
            errors.VersionNotFoundError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(errors.ObjectNotFoundError, KeyError)
        assert issubclass(errors.BucketNotFoundError, KeyError)
        assert issubclass(errors.VersionNotFoundError, KeyError)

    def test_integrity_is_a_restore_error(self):
        assert issubclass(errors.IntegrityError, errors.RestoreError)

    def test_object_not_found_message(self):
        exc = errors.ObjectNotFoundError("bucket", "a/key")
        assert "oss://bucket/a/key" in str(exc)
        assert exc.bucket == "bucket"
        assert exc.key == "a/key"

    def test_version_not_found_with_and_without_version(self):
        with_version = errors.VersionNotFoundError("f", 3)
        assert "f@v3" in str(with_version)
        without = errors.VersionNotFoundError("f")
        assert without.version is None
