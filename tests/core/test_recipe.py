"""Tests for recipes, recipe indexes and the recipe store."""

import pytest

from repro.core.recipe import ChunkRecord, Recipe, RecipeIndex, RecipeStore
from repro.errors import RecipeError, VersionNotFoundError
from repro.fingerprint.hashing import fingerprint


def make_record(index: int, container: int = 0, superchunk: bool = False) -> ChunkRecord:
    return ChunkRecord(
        fp=fingerprint(f"chunk{index}".encode()),
        container_id=container,
        size=4096 + index,
        duplicate_times=index % 4,
        is_superchunk=superchunk,
        first_fp=fingerprint(f"first{index}".encode()) if superchunk else b"",
        first_size=1024 if superchunk else 0,
    )


def make_recipe(path="file.db", version=0, segments=3, records_per_segment=5) -> Recipe:
    recipe = Recipe(path=path, version=version)
    counter = 0
    for _ in range(segments):
        segment = []
        for _ in range(records_per_segment):
            segment.append(make_record(counter, superchunk=(counter % 7 == 3)))
            counter += 1
        recipe.segments.append(segment)
    recipe.total_bytes = sum(r.size for r in recipe.all_records())
    return recipe


class TestChunkRecord:
    def test_plain_roundtrip(self):
        record = make_record(1)
        restored, offset = ChunkRecord.read_from(record.to_bytes(), 0)
        assert restored == record
        assert offset == len(record.to_bytes())

    def test_superchunk_roundtrip(self):
        record = make_record(2, superchunk=True)
        restored, _ = ChunkRecord.read_from(record.to_bytes(), 0)
        assert restored.is_superchunk
        assert restored.first_fp == record.first_fp
        assert restored.first_size == record.first_size

    def test_is_duplicate_not_serialised(self):
        record = make_record(1)
        record.is_duplicate = True
        restored, _ = ChunkRecord.read_from(record.to_bytes(), 0)
        assert restored.is_duplicate is False

    def test_bad_fingerprint_rejected(self):
        with pytest.raises(RecipeError):
            ChunkRecord(fp=b"short", container_id=0, size=10)

    def test_superchunk_requires_first_fp(self):
        with pytest.raises(RecipeError):
            ChunkRecord(fp=b"\x01" * 20, container_id=0, size=10, is_superchunk=True)


class TestRecipe:
    def test_roundtrip(self):
        recipe = make_recipe()
        restored = Recipe.from_bytes(recipe.path, recipe.to_bytes())
        assert restored.version == recipe.version
        assert restored.total_bytes == recipe.total_bytes
        assert restored.all_records() == recipe.all_records()
        assert len(restored.segments) == 3

    def test_chunk_count(self):
        assert make_recipe(segments=2, records_per_segment=4).chunk_count() == 8

    def test_referenced_containers(self):
        recipe = Recipe(path="f", version=0)
        recipe.segments.append([make_record(0, container=3), make_record(1, container=9)])
        assert recipe.referenced_containers() == {3, 9}

    def test_empty_recipe_roundtrip(self):
        recipe = Recipe(path="empty", version=1)
        restored = Recipe.from_bytes("empty", recipe.to_bytes())
        assert restored.segments == []

    def test_bad_magic_rejected(self):
        payload = bytearray(make_recipe().to_bytes())
        payload[:8] = b"NOTMAGIC"
        with pytest.raises(RecipeError):
            Recipe.from_bytes("f", bytes(payload))


class TestRecipeIndex:
    def test_add_lookup(self):
        index = RecipeIndex()
        fp = fingerprint(b"x")
        index.add(fp, 3)
        index.add(fp, 5)
        index.add(fp, 3)  # duplicate ignored
        assert index.lookup(fp) == [3, 5]
        assert index.lookup(fingerprint(b"y")) == []

    def test_roundtrip(self):
        index = RecipeIndex()
        for i in range(20):
            index.add(fingerprint(str(i).encode()), i % 4)
        restored = RecipeIndex.from_bytes(index.to_bytes())
        assert restored.entries == index.entries

    def test_len_counts_entries(self):
        index = RecipeIndex()
        index.add(fingerprint(b"a"), 0)
        index.add(fingerprint(b"a"), 1)
        index.add(fingerprint(b"b"), 0)
        assert len(index) == 3


class TestRecipeStore:
    @pytest.fixture
    def store(self, oss) -> RecipeStore:
        return RecipeStore(oss, "bucket")

    def test_put_get_recipe(self, store):
        recipe = make_recipe("db/users.tbl", 2)
        store.put_recipe(recipe)
        loaded = store.get_recipe("db/users.tbl", 2)
        assert loaded.all_records() == recipe.all_records()

    def test_missing_recipe_raises(self, store):
        with pytest.raises(VersionNotFoundError):
            store.get_recipe("ghost", 0)
        with pytest.raises(VersionNotFoundError):
            store.open_recipe("ghost", 0)
        with pytest.raises(VersionNotFoundError):
            store.get_recipe_index("ghost", 0)

    def test_path_quoting(self, store):
        recipe = make_recipe("dir with spaces/weird%név", 0)
        store.put_recipe(recipe)
        assert store.get_recipe("dir with spaces/weird%név", 0).version == 0

    def test_open_recipe_segment_access(self, store, oss):
        recipe = make_recipe("f", 0, segments=4, records_per_segment=6)
        store.put_recipe(recipe)
        handle = store.open_recipe("f", 0)
        assert handle.segment_count == 4
        assert handle.get_segment(2) == recipe.segments[2]

    def test_segment_fetch_is_ranged(self, store, oss):
        recipe = make_recipe("f", 0, segments=8, records_per_segment=32)
        store.put_recipe(recipe)
        handle = store.open_recipe("f", 0)
        before = oss.stats.snapshot()
        handle.get_segment(3)
        delta = oss.stats.diff(before)
        full_size = oss.peek_size("bucket", "recipes/f/000000")
        assert delta.bytes_read < full_size / 4

    def test_segment_range_single_request(self, store, oss):
        recipe = make_recipe("f", 0, segments=8, records_per_segment=8)
        store.put_recipe(recipe)
        handle = store.open_recipe("f", 0)
        before = oss.stats.snapshot()
        segments = handle.get_segment_range(2, 3)
        assert oss.stats.diff(before).get_requests == 1
        assert segments == recipe.segments[2:5]

    def test_segment_range_clamped_at_end(self, store):
        recipe = make_recipe("f", 0, segments=3)
        store.put_recipe(recipe)
        handle = store.open_recipe("f", 0)
        assert handle.get_segment_range(2, 10) == recipe.segments[2:]

    def test_segment_out_of_range(self, store):
        store.put_recipe(make_recipe("f", 0, segments=2))
        handle = store.open_recipe("f", 0)
        with pytest.raises(RecipeError):
            handle.get_segment(2)

    def test_recipe_index_roundtrip(self, store):
        index = RecipeIndex()
        index.add(fingerprint(b"x"), 1)
        store.put_recipe_index("f", 0, index)
        assert store.get_recipe_index("f", 0).entries == index.entries

    def test_delete_recipe(self, store):
        store.put_recipe(make_recipe("f", 0))
        store.put_recipe_index("f", 0, RecipeIndex())
        assert store.delete_recipe("f", 0) is True
        with pytest.raises(VersionNotFoundError):
            store.get_recipe("f", 0)
        assert store.delete_recipe("f", 0) is False

    def test_stored_bytes(self, store):
        assert store.stored_bytes() == 0
        store.put_recipe(make_recipe("f", 0))
        assert store.stored_bytes() > 0
