"""Unit and property tests for the L-node write-back block cache.

The two safety invariants under test, straight from the module contract:
dirty blocks are pinned (never dropped before :meth:`mark_clean`), and
clean blocks evict in LRU order from the cold end of each tier.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.blockcache import BlockCache
from repro.errors import CacheFullError

KB = 1024


def key(index: int, path: str = "f", version: int = 0):
    return (path, version, index)


class TestBasics:
    def test_miss_then_hit(self):
        cache = BlockCache(4 * KB, 0)
        assert cache.get(key(0)) is None
        cache.put(key(0), b"abc")
        assert cache.get(key(0)) == b"abc"
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.hit_ratio == 0.5

    def test_put_replaces_and_tracks_bytes(self):
        cache = BlockCache(4 * KB, 0)
        cache.put(key(0), b"x" * 100)
        cache.put(key(0), b"y" * 40)
        assert cache.memory_used == 40
        assert cache.get(key(0)) == b"y" * 40

    def test_peek_touches_nothing(self):
        cache = BlockCache(4 * KB, 0)
        cache.put(key(0), b"abc")
        assert cache.peek(key(0)) == b"abc"
        assert cache.peek(key(1)) is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BlockCache(0, 0)
        with pytest.raises(ValueError):
            BlockCache(1, -1)


class TestCleanEviction:
    def test_clean_blocks_evict_in_lru_order(self):
        cache = BlockCache(3 * KB, 0)
        for index in range(3):
            cache.put(key(index), bytes(KB))
        cache.get(key(0))  # 0 is now the hottest; 1 is the coldest
        cache.put(key(3), bytes(KB))
        assert not cache.contains(key(1))
        assert cache.contains(key(0))
        assert cache.stats.evictions == 1

    def test_no_disk_tier_means_drop(self):
        cache = BlockCache(KB, 0)
        cache.put(key(0), bytes(KB))
        cache.put(key(1), bytes(KB))
        assert not cache.contains(key(0))
        assert cache.stats.evictions == 1
        assert cache.stats.demotions == 0

    def test_clean_blocks_demote_to_disk_first(self):
        cache = BlockCache(KB, 4 * KB)
        cache.put(key(0), bytes(KB))
        cache.put(key(1), bytes(KB))
        assert cache.contains(key(0))
        assert cache.stats.demotions == 1
        assert cache.disk_used == KB

    def test_disk_hit_promotes_back_to_memory(self):
        cache = BlockCache(KB, 4 * KB)
        cache.put(key(0), bytes(KB))
        cache.put(key(1), bytes(KB))  # 0 demoted to disk
        assert cache.get(key(0)) == bytes(KB)  # promotes; 1 demoted
        assert cache.stats.disk_hits == 1
        assert cache.memory_used == KB
        cache.get(key(0))
        assert cache.stats.memory_hits == 1

    def test_oversized_block_is_refused(self):
        cache = BlockCache(KB, 0)
        with pytest.raises(CacheFullError):
            cache.put(key(0), bytes(2 * KB))


class TestDirtyPinning:
    def test_dirty_block_demotes_but_never_drops(self):
        cache = BlockCache(KB, 4 * KB)
        cache.put(key(0), b"dirty" * 10, dirty=True)
        for index in range(1, 6):
            cache.put(key(index), bytes(KB))
        assert cache.contains(key(0))
        assert cache.is_dirty(key(0))
        assert cache.peek(key(0)) == b"dirty" * 10

    def test_all_dirty_and_full_raises_cache_full(self):
        cache = BlockCache(KB, KB)
        cache.put(key(0), bytes(KB), dirty=True)
        cache.put(key(1), bytes(KB), dirty=True)  # demotes 0 to disk
        with pytest.raises(CacheFullError):
            cache.put(key(2), bytes(KB), dirty=True)
        # The acknowledged writes both survived the refused insert.
        assert cache.is_dirty(key(0)) and cache.is_dirty(key(1))

    def test_mark_clean_unpins(self):
        cache = BlockCache(KB, 0)
        cache.put(key(0), bytes(KB), dirty=True)
        cache.mark_clean(key(0))
        cache.put(key(1), bytes(KB))  # now 0 may be evicted
        assert not cache.contains(key(0))

    def test_drop_refuses_dirty_without_forget(self):
        cache = BlockCache(KB, 0)
        cache.put(key(0), b"x", dirty=True)
        with pytest.raises(CacheFullError):
            cache.drop(key(0))
        cache.drop(key(0), forget_dirty=True)
        assert not cache.contains(key(0))

    def test_disk_eviction_skips_dirty_blocks(self):
        cache = BlockCache(KB, 2 * KB)
        cache.put(key(0), bytes(KB), dirty=True)
        cache.put(key(1), bytes(KB))  # dirty 0 demoted to disk
        cache.put(key(2), bytes(KB))  # clean 1 demoted; disk full
        cache.put(key(3), bytes(KB))  # disk evicts clean 1, not dirty 0
        assert cache.contains(key(0))
        assert not cache.contains(key(1))

    def test_dirty_bytes(self):
        cache = BlockCache(4 * KB, 0)
        cache.put(key(0), b"abc", dirty=True)
        cache.put(key(1), b"defg", dirty=True)
        cache.put(key(2), b"clean")
        assert cache.dirty_bytes == 7
        assert cache.dirty_keys() == [key(0), key(1)]


class TestRekeyAndDropVersion:
    def test_rekey_moves_block_and_dirty_flag(self):
        cache = BlockCache(4 * KB, 0)
        cache.put(key(0, version=0), b"abc", dirty=True)
        cache.rekey(key(0, version=0), key(0, version=1))
        assert not cache.contains(key(0, version=0))
        assert cache.peek(key(0, version=1)) == b"abc"
        assert cache.is_dirty(key(0, version=1))
        assert not cache.is_dirty(key(0, version=0))

    def test_rekey_missing_is_a_noop(self):
        cache = BlockCache(4 * KB, 0)
        cache.rekey(key(0), key(1))
        assert not cache.contains(key(1))

    def test_drop_version_forgets_dirty(self):
        cache = BlockCache(8 * KB, 0)
        cache.put(key(0, version=0), b"a", dirty=True)
        cache.put(key(1, version=0), b"b")
        cache.put(key(0, version=1), b"c")
        cache.drop_version("f", 0)
        assert cache.resident_keys() == {key(0, version=1)}


#: One random cache operation: (op, block index, payload length, dirty).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "clean"]),
        st.integers(0, 11),
        st.integers(1, 512),
        st.booleans(),
    ),
    max_size=60,
)


@given(_OPS)
def test_property_dirty_blocks_survive_until_marked_clean(ops):
    """Whatever the op sequence, an acknowledged (dirty) write is never
    dropped: every still-dirty block stays resident with its exact bytes,
    even when inserts start failing with CacheFullError."""
    cache = BlockCache(1024, 1024)
    expected: dict[tuple, bytes] = {}
    for op, index, length, dirty in ops:
        if op == "put":
            data = bytes([index % 251]) * length
            try:
                cache.put(key(index), data, dirty=dirty)
            except CacheFullError:
                continue  # refused, not lost: prior dirty state must hold
            if dirty:
                expected[key(index)] = data
            else:
                expected.pop(key(index), None)
        elif op == "get":
            cache.get(key(index))
        else:
            cache.mark_clean(key(index))
            expected.pop(key(index), None)
        for dirty_key, payload in expected.items():
            assert cache.contains(dirty_key)
            assert cache.peek(dirty_key) == payload
        assert cache.memory_used <= cache.memory_capacity
        assert cache.disk_used <= cache.disk_capacity


@given(_OPS)
def test_property_read_your_writes(ops):
    """A resident block always reads back the last bytes put under its key."""
    cache = BlockCache(2048, 2048)
    last: dict[tuple, bytes] = {}
    for op, index, length, dirty in ops:
        if op == "put":
            data = index.to_bytes(2, "big") * length
            try:
                cache.put(key(index), data, dirty=dirty)
            except CacheFullError:
                continue
            last[key(index)] = data
        elif op == "get":
            got = cache.get(key(index))
            if got is not None:
                assert got == last[key(index)]
        else:
            cache.mark_clean(key(index))


@given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
def test_property_clean_eviction_is_lru(touches):
    """With clean blocks only, the evicted block is always the one whose
    last touch (put or get) is oldest among the residents."""
    capacity = 4
    cache = BlockCache(capacity, 0)
    order: list[int] = []  # coldest first
    for index in touches:
        resident = cache.resident_keys()
        if key(index) in resident:
            cache.get(key(index))
            order.remove(index)
        else:
            cache.put(key(index), b"\x00")
            if len(resident) == capacity:
                victim = order.pop(0)
                assert not cache.contains(key(victim))
        order.append(index)
        assert cache.resident_keys() == {key(i) for i in order}
