"""Hypothesis round-trip properties for every on-OSS serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.container import ChunkLocation, ContainerMeta
from repro.core.recipe import ChunkRecord, Recipe, RecipeIndex

fingerprints = st.binary(min_size=20, max_size=20)
sizes = st.integers(min_value=1, max_value=1 << 30)
container_ids = st.integers(min_value=0, max_value=1 << 40)


@st.composite
def chunk_records(draw):
    superchunk = draw(st.booleans())
    return ChunkRecord(
        fp=draw(fingerprints),
        container_id=draw(container_ids),
        size=draw(sizes),
        duplicate_times=draw(st.integers(0, 1000)),
        is_superchunk=superchunk,
        first_fp=draw(fingerprints) if superchunk else b"",
        first_size=draw(st.integers(1, 1 << 20)) if superchunk else 0,
    )


@st.composite
def recipes(draw):
    segments = draw(
        st.lists(st.lists(chunk_records(), max_size=6), max_size=5)
    )
    recipe = Recipe(
        path=draw(st.text(max_size=30)),
        version=draw(st.integers(0, 10_000)),
        segments=segments,
    )
    recipe.total_bytes = sum(r.size for r in recipe.all_records())
    return recipe


@st.composite
def container_metas(draw):
    meta = ContainerMeta(draw(container_ids))
    offset = 0
    for _ in range(draw(st.integers(0, 10))):
        size = draw(st.integers(1, 1 << 16))
        meta.add(
            ChunkLocation(
                fp=draw(fingerprints),
                offset=offset,
                size=size,
                deleted=draw(st.booleans()),
                alias=draw(st.booleans()),
            )
        )
        offset += size
    return meta


@given(chunk_records())
@settings(max_examples=50, deadline=None)
def test_chunk_record_roundtrip(record):
    restored, consumed = ChunkRecord.read_from(record.to_bytes(), 0)
    assert restored == record
    assert consumed == len(record.to_bytes())


@given(recipes())
@settings(max_examples=30, deadline=None)
def test_recipe_roundtrip(recipe):
    restored = Recipe.from_bytes(recipe.path, recipe.to_bytes())
    assert restored.version == recipe.version
    assert restored.total_bytes == recipe.total_bytes
    assert restored.segments == recipe.segments


@given(
    st.dictionaries(
        fingerprints, st.lists(st.integers(0, 1000), min_size=1, max_size=4,
                               unique=True), max_size=16,
    )
)
@settings(max_examples=30, deadline=None)
def test_recipe_index_roundtrip(entries):
    index = RecipeIndex()
    for fp, ordinals in entries.items():
        for ordinal in ordinals:
            index.add(fp, ordinal)
    restored = RecipeIndex.from_bytes(index.to_bytes())
    assert restored.entries == index.entries


@given(container_metas())
@settings(max_examples=30, deadline=None)
def test_container_meta_roundtrip(meta):
    restored = ContainerMeta.from_bytes(meta.to_bytes())
    assert restored.container_id == meta.container_id
    assert len(restored.entries) == len(meta.entries)
    for original, loaded in zip(meta.entries, restored.entries):
        assert (original.fp, original.offset, original.size) == (
            loaded.fp, loaded.offset, loaded.size
        )
        assert original.deleted == loaded.deleted
        assert original.alias == loaded.alias
    assert restored.total_chunks() == meta.total_chunks()
    assert restored.live_bytes() == meta.live_bytes()


#: Every (deleted, alias) flag combination a metadata entry can carry.
_FLAG_COMBOS = [(False, False), (True, False), (False, True), (True, True)]


@st.composite
def flagged_metas(draw):
    """Metas whose entries sweep explicit deleted/alias flag combos."""
    combos = draw(
        st.lists(st.sampled_from(_FLAG_COMBOS), min_size=1, max_size=12)
    )
    meta = ContainerMeta(draw(container_ids))
    offset = 0
    for index, (deleted, alias) in enumerate(combos):
        size = draw(st.integers(1, 1 << 12))
        fp = index.to_bytes(4, "big") * 5  # unique 20-byte fingerprint
        meta.add(ChunkLocation(fp=fp, offset=offset, size=size,
                               deleted=deleted, alias=alias))
        offset += size
    return meta


@given(flagged_metas())
@settings(max_examples=60, deadline=None)
def test_container_meta_flag_combos_roundtrip(meta):
    restored = ContainerMeta.from_bytes(meta.to_bytes())
    for original, loaded in zip(meta.entries, restored.entries):
        assert (original.deleted, original.alias) == (loaded.deleted, loaded.alias)
    # Flag-derived accounting survives the round trip exactly.
    assert restored.live_chunks() == meta.live_chunks()
    assert restored.live_bytes() == meta.live_bytes()
    assert restored.stale_fraction() == meta.stale_fraction()
    assert len(restored.live_lookup_entries()) == len(meta.live_lookup_entries())


@given(flagged_metas())
@settings(max_examples=60, deadline=None)
def test_mark_deleted_then_revive_roundtrips_through_bytes(meta):
    # Deleting then reviving every live primary chunk — with a
    # serialisation round trip in between — restores the original flags.
    live = [entry.fp for entry in meta.live_entries()]
    for fp in live:
        assert meta.mark_deleted(fp)
    reloaded = ContainerMeta.from_bytes(meta.to_bytes())
    for fp in live:
        assert reloaded.revive(fp)
    final = ContainerMeta.from_bytes(reloaded.to_bytes())
    assert final.live_chunks() == len(live)
    for fp in live:
        entry = final.find(fp)
        assert entry is not None and not entry.deleted
