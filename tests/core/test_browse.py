"""Unit tests for browse sessions: random-access reads, write-back
writes, truncate, flush-as-new-version, and the cache counters."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import SlimStore
from repro.core.browse import BrowseSession
from repro.errors import BrowseError, CacheFullError, VersionNotFoundError
from tests.conftest import SMALL_CONFIG, random_bytes

#: Small blocks so a ~100 KB file spans many cache blocks.
BROWSE_CONFIG = replace(
    SMALL_CONFIG,
    browse_block_bytes=8 * 1024,
    browse_cache_memory_bytes=32 * 1024,
    browse_cache_disk_bytes=64 * 1024,
    browse_readahead_blocks=2,
)


@pytest.fixture
def store(rng) -> tuple[SlimStore, list[bytes]]:
    store = SlimStore(BROWSE_CONFIG)
    v0 = random_bytes(rng, 100_000)
    v1 = bytearray(v0)
    v1[20_000:28_000] = random_bytes(rng, 8_000)
    store.backup("data/f.bin", v0)
    store.backup("data/f.bin", bytes(v1))
    return store, [v0, bytes(v1)]


@pytest.fixture
def session(store) -> BrowseSession:
    return BrowseSession(store[0])


class TestOpen:
    def test_open_latest_and_pinned(self, store, session):
        _, payloads = store
        assert session.open("data/f.bin").version == 1
        assert session.open("data/f.bin", 0).version == 0
        assert session.open("data/f.bin", 0).size == len(payloads[0])

    def test_open_missing_path_raises(self, session):
        with pytest.raises(VersionNotFoundError):
            session.open("nope")

    def test_open_missing_version_raises(self, session):
        with pytest.raises(VersionNotFoundError):
            session.open("data/f.bin", 7)

    def test_handles_are_memoised(self, session):
        assert session.open("data/f.bin") is session.open("data/f.bin", 1)


class TestRead:
    def test_slices_match_both_versions(self, store, session):
        _, payloads = store
        for version, payload in enumerate(payloads):
            handle = session.open("data/f.bin", version)
            for offset, length in [(0, 100), (19_990, 40), (25_000, 8192),
                                   (99_990, 100), (0, 200_000)]:
                assert handle.read(offset, length) == payload[offset:offset + length]

    def test_read_at_or_past_eof_is_empty(self, session):
        handle = session.open("data/f.bin")
        assert handle.read(handle.size, 10) == b""
        assert handle.read(handle.size + 5, 10) == b""
        assert handle.read(0, 0) == b""

    def test_negative_range_raises(self, session):
        handle = session.open("data/f.bin")
        with pytest.raises(BrowseError):
            handle.read(-1, 10)
        with pytest.raises(BrowseError):
            handle.read(0, -1)

    def test_warm_read_issues_no_oss_requests(self, store, session):
        slim, payloads = store
        handle = session.open("data/f.bin")
        handle.read(0, handle.size)  # cold: populates the cache
        before = slim.oss.stats.get_requests
        assert handle.read(10_000, 30_000) == payloads[1][10_000:40_000]
        assert slim.oss.stats.get_requests == before
        assert session.stats.misses > 0 and session.stats.hits > 0

    def test_readahead_pulls_adjacent_blocks(self, session):
        handle = session.open("data/f.bin")
        handle.read(0, 100)  # one touched block, two readahead
        assert session.stats.readahead_blocks == 2
        assert session.cache.contains(("data/f.bin", 1, 1))
        assert session.cache.contains(("data/f.bin", 1, 2))
        session.stats.misses = 0
        handle.read(8 * 1024, 100)  # readahead made this a hit
        assert session.stats.misses == 0

    def test_cold_read_is_ranged_not_whole_version(self, store, session):
        slim, payloads = store
        before = slim.oss.stats.bytes_read
        session.open("data/f.bin").read(0, 1_000)
        cold_bytes = slim.oss.stats.bytes_read - before
        assert cold_bytes < len(payloads[1])


class TestWrite:
    def test_read_your_writes(self, store, session):
        _, payloads = store
        handle = session.open("data/f.bin")
        assert handle.write(30_000, b"EDITED") == 6
        expected = bytearray(payloads[1])
        expected[30_000:30_006] = b"EDITED"
        assert handle.read(29_990, 30) == bytes(expected[29_990:30_020])
        assert handle.dirty
        assert handle.dirty_indices() == [30_000 // (8 * 1024)]

    def test_write_spanning_blocks(self, store, session):
        _, payloads = store
        handle = session.open("data/f.bin")
        patch = bytes(range(256)) * 100  # 25 600 bytes, spans 4+ blocks
        handle.write(10_000, patch)
        expected = bytearray(payloads[1])
        expected[10_000:10_000 + len(patch)] = patch
        assert handle.read(0, handle.size) == bytes(expected)

    def test_write_past_eof_extends_with_zero_hole(self, store, session):
        _, payloads = store
        handle = session.open("data/f.bin")
        base = handle.size
        handle.write(base + 5_000, b"tail")
        assert handle.size == base + 5_004
        assert handle.read(base, 5_000) == bytes(5_000)
        assert handle.read(base + 5_000, 10) == b"tail"

    def test_negative_offset_raises(self, session):
        with pytest.raises(BrowseError):
            session.open("data/f.bin").write(-1, b"x")

    def test_empty_write_is_a_noop(self, session):
        handle = session.open("data/f.bin")
        assert handle.write(0, b"") == 0
        assert not handle.dirty

    def test_cache_full_of_dirty_blocks_refuses_more_writes(self, rng):
        config = replace(
            SMALL_CONFIG,
            browse_block_bytes=8 * 1024,
            browse_cache_memory_bytes=8 * 1024,
            browse_cache_disk_bytes=8 * 1024,
            browse_readahead_blocks=0,
        )
        store = SlimStore(config)
        store.backup("f", random_bytes(rng, 40_000))
        session = BrowseSession(store)
        handle = session.open("f")
        handle.write(0, b"a" * 8 * 1024)
        handle.write(8 * 1024, b"b" * 8 * 1024)
        with pytest.raises(CacheFullError):
            handle.write(16 * 1024, b"c" * 8 * 1024)
        # Flushing drains the dirty set; the refused write then succeeds.
        handle.flush()
        assert handle.write(16 * 1024, b"c" * 8 * 1024) == 8 * 1024


class TestTruncate:
    def test_shrink_then_read(self, store, session):
        _, payloads = store
        handle = session.open("data/f.bin")
        handle.truncate(10_000)
        assert handle.size == 10_000
        assert handle.read(0, 100_000) == payloads[1][:10_000]
        assert handle.dirty  # resize alone dirties the file

    def test_shrink_keeps_writes_inside_new_size(self, session):
        handle = session.open("data/f.bin")
        handle.write(1_000, b"KEEP")
        handle.write(50_000, b"DROPPED")
        handle.truncate(10_000)
        assert handle.read(1_000, 4) == b"KEEP"
        assert handle.dirty_indices() == [0]

    def test_grow_reads_zeros(self, session):
        handle = session.open("data/f.bin")
        base = handle.size
        handle.truncate(base + 1_000)
        assert handle.read(base, 2_000) == bytes(1_000)

    def test_negative_size_raises(self, session):
        with pytest.raises(BrowseError):
            session.open("data/f.bin").truncate(-1)


class TestFlush:
    def test_clean_flush_is_none(self, session):
        assert session.open("data/f.bin").flush() is None
        assert session.flush() == []

    def test_flush_commits_new_version(self, store, session):
        slim, payloads = store
        handle = session.open("data/f.bin")
        handle.write(40_000, b"COMMITTED")
        report = handle.flush()
        assert report.version == 2 and report.base_version == 1
        assert report.blocks_written >= 1
        assert report.staged_bytes > 0
        expected = bytearray(payloads[1])
        expected[40_000:40_009] = b"COMMITTED"
        assert slim.restore("data/f.bin").data == bytes(expected)
        assert slim.versions("data/f.bin") == [0, 1, 2]
        # The handle now tracks the published version, clean.
        assert handle.version == 2 and not handle.dirty
        assert session.stats.dirty_writebacks >= 1

    def test_flush_keeps_cache_warm_under_new_version(self, store, session):
        slim, _ = store
        handle = session.open("data/f.bin")
        handle.read(0, handle.size)
        handle.write(0, b"warm")
        handle.flush()
        before = slim.oss.stats.get_requests
        assert handle.read(0, 4) == b"warm"
        assert slim.oss.stats.get_requests == before

    def test_flush_leaves_no_staging_debris(self, store, session):
        slim, _ = store
        handle = session.open("data/f.bin")
        handle.write(0, b"x")
        handle.flush()
        assert not slim.oss.peek_keys(slim.bucket, "browsecache/")

    def test_truncate_only_flush_commits(self, store, session):
        slim, payloads = store
        handle = session.open("data/f.bin")
        handle.truncate(5_000)
        report = handle.flush()
        assert report is not None
        assert slim.restore("data/f.bin").data == payloads[1][:5_000]

    def test_flush_of_pinned_old_version_branches_from_it(self, store, session):
        slim, payloads = store
        handle = session.open("data/f.bin", 0)
        handle.write(0, b"OLD-BASE-EDIT")
        report = handle.flush()
        assert report.base_version == 0 and report.version == 2
        expected = bytearray(payloads[0])
        expected[:13] = b"OLD-BASE-EDIT"
        assert slim.restore("data/f.bin", 2).data == bytes(expected)

    def test_session_flush_covers_all_dirty_files(self, store, session):
        slim, _ = store
        slim.backup("data/g.bin", b"other file contents")
        session.open("data/f.bin").write(0, b"f-edit")
        session.open("data/g.bin").write(0, b"g-edit")
        reports = session.flush()
        assert {r.path for r in reports} == {"data/f.bin", "data/g.bin"}
        assert session.flush() == []


class TestDiscardAndStat:
    def test_discard_throws_away_writes(self, store, session):
        _, payloads = store
        handle = session.open("data/f.bin")
        handle.write(0, b"ZZZ")
        handle.truncate(50)
        assert handle.discard() == 1
        assert not handle.dirty
        assert handle.size == len(payloads[1])
        assert handle.read(0, 3) == payloads[1][:3]

    def test_stat_reflects_dirtiness(self, session):
        handle = session.open("data/f.bin")
        stat = handle.stat()
        assert stat.path == "data/f.bin" and stat.version == 1
        assert stat.size == handle.size and not stat.dirty
        handle.write(0, b"x")
        assert handle.stat().dirty and handle.stat().dirty_blocks == 1

    def test_stats_line_mentions_counters(self, session):
        handle = session.open("data/f.bin")
        handle.read(0, 100)
        line = session.stats_line()
        assert line.startswith("blockcache:")
        assert "misses=1" in line
