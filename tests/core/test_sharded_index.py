"""Sharded global index: placement, batched ops, recovery, degradation."""

from __future__ import annotations

import hashlib

import pytest

from repro.core.global_index import GlobalIndex, shard_of
from repro.oss.faults import FaultPolicy
from repro.oss.object_store import ObjectStorageService


def _fp(i: int) -> bytes:
    """A realistic fingerprint: uniform prefixes spread over the shards."""
    return hashlib.sha1(i.to_bytes(8, "big")).digest()


@pytest.fixture
def index(oss) -> GlobalIndex:
    return GlobalIndex(oss, shard_count=4)


class TestShardPlacement:
    def test_single_shard_maps_everything_to_zero(self):
        assert all(shard_of(_fp(i), 1) == 0 for i in range(100))

    def test_prefix_decides_the_shard(self):
        fp = bytes.fromhex("beef") + b"\x00" * 18
        assert shard_of(fp, 16) == 0xBEEF % 16

    def test_uniform_fingerprints_balance_the_shards(self):
        counts = [0] * 8
        for i in range(4096):
            counts[shard_of(_fp(i), 8)] += 1
        assert min(counts) > 4096 / 8 * 0.8

    def test_single_shard_keeps_the_seed_store_name(self, oss):
        legacy = GlobalIndex(oss, shard_count=1)
        legacy.assign(_fp(1), 7)
        legacy.flush()
        # A fresh single-shard index over the same bucket recovers it.
        attached = GlobalIndex(oss, shard_count=1)
        attached.recover()
        assert attached.lookup(_fp(1)) == 7


class TestShardedOperations:
    def test_lookup_assign_remove_roundtrip(self, index):
        for i in range(64):
            index.assign(_fp(i), i * 10)
        for i in range(64):
            assert index.lookup(_fp(i)) == i * 10
        index.remove(_fp(0))
        assert index.lookup(_fp(0)) is None

    def test_bloom_rejects_unknown_fingerprints(self, index):
        index.assign(_fp(1), 1)
        assert index.maybe_contains(_fp(1))
        assert not index.maybe_contains(_fp(999999))

    def test_get_many_matches_serial_lookups(self, index):
        for i in range(200):
            index.assign(_fp(i), i)
        index.flush()
        fps = [_fp(i) for i in range(250)]  # 50 of them unindexed
        result = index.get_many(fps)
        assert result.failed == []
        for i, fp in enumerate(fps):
            assert result.owners[fp] == (i if i < 200 else None)
        # One RPC per touched shard, and shard timings to match.
        assert len(result.shard_seconds) <= index.shard_count
        assert result.parallel_seconds() <= result.serial_seconds()

    def test_put_many_matches_serial_assigns(self, index):
        seconds = index.put_many([(_fp(i), i) for i in range(100)])
        assert len(seconds) <= index.shard_count
        for i in range(100):
            assert index.lookup(_fp(i)) == i
            assert index.maybe_contains(_fp(i))

    def test_iter_items_spans_all_shards(self, index):
        assignments = {_fp(i): i for i in range(64)}
        index.put_many(assignments.items())
        assert dict(index.iter_items()) == assignments

    def test_recover_rebuilds_every_shard_and_bloom(self, oss):
        index = GlobalIndex(oss, shard_count=4)
        for i in range(128):
            index.assign(_fp(i), i)
        index.flush()

        attached = GlobalIndex(oss, shard_count=4)
        attached.recover()
        for i in range(128):
            assert attached.lookup(_fp(i)) == i
            assert attached.maybe_contains(_fp(i))
        stats = attached.shard_stats()
        assert len(stats) == 4
        assert sum(s["entries"] for s in stats) == 128
        assert all(s["entries"] > 0 for s in stats)

    def test_shard_count_must_be_positive(self, oss):
        with pytest.raises(ValueError):
            GlobalIndex(oss, shard_count=0)


class TestBatchDegradation:
    def test_failed_shards_collect_instead_of_raising(self):
        faults = FaultPolicy(seed=7)
        oss = ObjectStorageService(faults=faults)
        index = GlobalIndex(oss, shard_count=4)
        for i in range(64):
            index.assign(_fp(i), i)
        index.flush()  # push everything to SSTables so reads hit OSS

        faults.outage({"get"})
        result = index.get_many([_fp(i) for i in range(64)])
        faults.revive()

        assert result.owners == {}
        assert sorted(result.failed) == sorted(_fp(i) for i in range(64))
        assert index.counters.get("index_batch_shard_failures") == 4
        # Once OSS recovers the same batch answers normally.
        healthy = index.get_many([_fp(i) for i in range(64)])
        assert healthy.failed == []
        assert all(healthy.owners[_fp(i)] == i for i in range(64))
