"""Tests for the multi-tenant backup service."""

import pytest

from repro import SlimStoreConfig
from repro.core.tenancy import BackupService, RetentionPolicy, TENANT_META_KEY
from repro.oss.backend import FilesystemBackend
from repro.oss.object_store import ObjectStorageService
from tests.conftest import random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


@pytest.fixture
def service() -> BackupService:
    return BackupService(config=CONFIG)


class TestTenantIsolation:
    def test_same_content_stored_per_tenant(self, service, rng):
        """Identical data from two tenants is NOT cross-deduplicated —
        isolation over savings (each tenant has its own global index)."""
        data = random_bytes(rng, 128 * 1024)
        first = service.backup("alice", "f", data)
        second = service.backup("bob", "f", data)
        assert first.dedup_ratio == 0.0
        assert second.dedup_ratio == 0.0  # no visibility into alice's chunks

    def test_tenants_have_independent_versions(self, service, rng):
        data = random_bytes(rng, 64 * 1024)
        service.backup("alice", "f", data)
        service.backup("alice", "f", data)
        service.backup("bob", "f", data)
        assert service.store_for("alice").versions("f") == [0, 1]
        assert service.store_for("bob").versions("f") == [0]

    def test_restore_is_per_tenant(self, service, rng):
        alice_data = random_bytes(rng, 64 * 1024)
        bob_data = random_bytes(rng, 64 * 1024)
        service.backup("alice", "f", alice_data)
        service.backup("bob", "f", bob_data)
        assert service.restore("alice", "f").data == alice_data
        assert service.restore("bob", "f").data == bob_data

    def test_buckets_are_separate(self, service, rng):
        service.backup("alice", "f", random_bytes(rng, 32 * 1024))
        buckets = service.oss.bucket_names()
        assert "tenant-alice" in buckets
        assert all(not b.startswith("tenant-bob") for b in buckets)


class TestServiceAccounting:
    def test_usage_tracks_jobs_and_bytes(self, service, rng):
        data = random_bytes(rng, 96 * 1024)
        service.backup("alice", "f", data)
        service.backup("alice", "f", data)
        service.restore("alice", "f")
        usage = service.usage("alice")
        assert usage.backup_jobs == 2
        assert usage.restore_jobs == 1
        assert usage.logical_bytes_backed_up == 2 * len(data)
        assert usage.stored_bytes > 0

    def test_unknown_tenant_usage_is_empty(self, service):
        usage = service.usage("nobody")
        assert usage.backup_jobs == 0
        assert usage.stored_bytes == 0

    def test_total_stored_across_tenants(self, service, rng):
        service.backup("alice", "f", random_bytes(rng, 64 * 1024))
        service.backup("bob", "f", random_bytes(rng, 64 * 1024))
        total = service.total_stored_bytes()
        assert total >= service.usage("alice").stored_bytes
        assert service.tenants() == ["alice", "bob"]

    def test_tenant_name_validation(self, service):
        with pytest.raises(ValueError):
            service.store_for("")
        with pytest.raises(ValueError):
            service.store_for("../escape")

    def test_mixed_case_names_rejected(self, service, rng):
        """Regression: mixed-case names used to fold to lowercase after
        validation, so "Alice" and "alice" silently shared one bucket —
        a tenant-isolation hole, not a convenience.  They are rejected
        now, and the lowercase tenant's data stays its own."""
        service.backup("alice", "f", random_bytes(rng, 32 * 1024))
        for name in ("Alice", "ALICE", "Team_A-1"):
            with pytest.raises(ValueError, match="lowercase"):
                service.store_for(name)
        assert service.tenants() == ["alice"]


DAY = 86400.0


class TestRetention:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(keep_last_n=-1)
        with pytest.raises(ValueError):
            RetentionPolicy(keep_days=-0.5)

    def test_keep_last_n(self, service, rng):
        for i in range(5):
            service.backup("alice", "f", random_bytes(rng, 32 * 1024))
        service.set_retention("alice", RetentionPolicy(keep_last_n=2))
        report = service.apply_retention("alice")
        assert report.deleted == [("f", 0), ("f", 1), ("f", 2)]
        assert report.reclaimed_bytes > 0
        assert service.store_for("alice").versions("f") == [3, 4]

    def test_keep_days_uses_timestamps(self, service, rng):
        for day in range(4):
            service.backup(
                "alice", "f", random_bytes(rng, 32 * 1024), timestamp=day * DAY
            )
        # At day 3, a 1.5-day window protects versions from days 2 and 3.
        report = service.apply_retention("alice", now=3 * DAY)
        assert report.deleted == []  # no policy configured: no-op
        service.set_retention("alice", RetentionPolicy(keep_days=1.5))
        report = service.apply_retention("alice", now=3 * DAY)
        assert report.deleted == [("f", 0), ("f", 1)]
        assert service.store_for("alice").versions("f") == [2, 3]

    def test_rules_union(self, service, rng):
        """A version protected by either rule survives."""
        for day in range(4):
            service.backup(
                "alice", "f", random_bytes(rng, 32 * 1024), timestamp=day * DAY
            )
        # keep_days protects nothing (all old), keep_last_n saves two.
        service.set_retention(
            "alice", RetentionPolicy(keep_last_n=2, keep_days=0.5)
        )
        report = service.apply_retention("alice", now=30 * DAY)
        assert report.deleted == [("f", 0), ("f", 1)]

    def test_missing_timestamps_treated_as_old(self, service, rng):
        for _ in range(3):
            service.backup("alice", "f", random_bytes(rng, 32 * 1024))
        service.set_retention(
            "alice", RetentionPolicy(keep_last_n=1, keep_days=7.0)
        )
        report = service.apply_retention("alice", now=0.0)
        assert report.deleted == [("f", 0), ("f", 1)]

    def test_retention_survives_reattach(self, tmp_path, rng):
        def make_service():
            oss = ObjectStorageService(
                backend_factory=lambda bucket: FilesystemBackend(tmp_path / bucket)
            )
            return BackupService(oss, CONFIG)

        first = make_service()
        for day in range(3):
            first.backup(
                "alice", "f", random_bytes(rng, 32 * 1024), timestamp=day * DAY
            )
        first.set_retention("alice", RetentionPolicy(keep_last_n=1))
        fresh = make_service()
        assert fresh.meta("alice").retention == RetentionPolicy(keep_last_n=1)
        assert fresh.meta("alice").backup_times["f"] == {
            0: 0.0,
            1: DAY,
            2: 2 * DAY,
        }
        report = fresh.apply_retention("alice")
        assert report.deleted == [("f", 0), ("f", 1)]

    def test_weight_persisted(self, service):
        assert service.weight("alice") == 1.0
        service.set_weight("alice", 3.0)
        assert service.weight("alice") == 3.0
        with pytest.raises(ValueError):
            service.set_weight("alice", 0.0)
        assert service.oss.peek_keys("tenant-alice", TENANT_META_KEY)


class TestRemoveTenant:
    def test_remove_reclaims_everything(self, service, rng):
        data = random_bytes(rng, 96 * 1024)
        service.backup("alice", "f", data)
        service.backup("alice", "g", random_bytes(rng, 64 * 1024))
        service.store_for("alice").backup_snapshot(
            {"s1": random_bytes(rng, 32 * 1024)}
        )
        service.set_retention("alice", RetentionPolicy(keep_last_n=1))
        reclaimed = service.remove_tenant("alice")
        assert reclaimed > 0
        assert service.tenants() == []
        assert service.oss.peek_keys("tenant-alice") == []
        assert service.oss.peek_keys("tenant-alice-index") == []

    def test_removed_name_reusable_as_fresh_account(self, service, rng):
        data = random_bytes(rng, 64 * 1024)
        service.backup("alice", "f", data)
        service.remove_tenant("alice")
        report = service.backup("alice", "f", data)
        assert report.version == 0
        assert report.dedup_ratio == 0.0  # nothing survived removal
        assert service.restore("alice", "f").data == data

    def test_other_tenants_untouched(self, service, rng):
        alice_data = random_bytes(rng, 64 * 1024)
        bob_data = random_bytes(rng, 64 * 1024)
        service.backup("alice", "f", alice_data)
        service.backup("bob", "f", bob_data)
        service.remove_tenant("alice")
        assert service.restore("bob", "f").data == bob_data


class TestDurableTenancy:
    def test_tenants_survive_restart(self, tmp_path, rng):
        def make_service():
            oss = ObjectStorageService(
                backend_factory=lambda bucket: FilesystemBackend(tmp_path / bucket)
            )
            return BackupService(oss, CONFIG)

        data = random_bytes(rng, 96 * 1024)
        make_service().backup("alice", "f", data)
        fresh = make_service()
        assert fresh.store_for("alice").versions("f") == [0]
        report = fresh.backup("alice", "f", data)
        assert report.dedup_ratio > 0.9
        assert fresh.restore("alice", "f", 0).data == data
