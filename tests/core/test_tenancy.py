"""Tests for the multi-tenant backup service."""

import pytest

from repro import SlimStoreConfig
from repro.core.tenancy import BackupService
from repro.oss.backend import FilesystemBackend
from repro.oss.object_store import ObjectStorageService
from tests.conftest import random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


@pytest.fixture
def service() -> BackupService:
    return BackupService(config=CONFIG)


class TestTenantIsolation:
    def test_same_content_stored_per_tenant(self, service, rng):
        """Identical data from two tenants is NOT cross-deduplicated —
        isolation over savings (each tenant has its own global index)."""
        data = random_bytes(rng, 128 * 1024)
        first = service.backup("alice", "f", data)
        second = service.backup("bob", "f", data)
        assert first.dedup_ratio == 0.0
        assert second.dedup_ratio == 0.0  # no visibility into alice's chunks

    def test_tenants_have_independent_versions(self, service, rng):
        data = random_bytes(rng, 64 * 1024)
        service.backup("alice", "f", data)
        service.backup("alice", "f", data)
        service.backup("bob", "f", data)
        assert service.store_for("alice").versions("f") == [0, 1]
        assert service.store_for("bob").versions("f") == [0]

    def test_restore_is_per_tenant(self, service, rng):
        alice_data = random_bytes(rng, 64 * 1024)
        bob_data = random_bytes(rng, 64 * 1024)
        service.backup("alice", "f", alice_data)
        service.backup("bob", "f", bob_data)
        assert service.restore("alice", "f").data == alice_data
        assert service.restore("bob", "f").data == bob_data

    def test_buckets_are_separate(self, service, rng):
        service.backup("alice", "f", random_bytes(rng, 32 * 1024))
        buckets = service.oss.bucket_names()
        assert "tenant-alice" in buckets
        assert all(not b.startswith("tenant-bob") for b in buckets)


class TestServiceAccounting:
    def test_usage_tracks_jobs_and_bytes(self, service, rng):
        data = random_bytes(rng, 96 * 1024)
        service.backup("alice", "f", data)
        service.backup("alice", "f", data)
        service.restore("alice", "f")
        usage = service.usage("alice")
        assert usage.backup_jobs == 2
        assert usage.restore_jobs == 1
        assert usage.logical_bytes_backed_up == 2 * len(data)
        assert usage.stored_bytes > 0

    def test_unknown_tenant_usage_is_empty(self, service):
        usage = service.usage("nobody")
        assert usage.backup_jobs == 0
        assert usage.stored_bytes == 0

    def test_total_stored_across_tenants(self, service, rng):
        service.backup("alice", "f", random_bytes(rng, 64 * 1024))
        service.backup("bob", "f", random_bytes(rng, 64 * 1024))
        total = service.total_stored_bytes()
        assert total >= service.usage("alice").stored_bytes
        assert service.tenants() == ["alice", "bob"]

    def test_tenant_name_validation(self, service):
        with pytest.raises(ValueError):
            service.store_for("")
        with pytest.raises(ValueError):
            service.store_for("../escape")
        assert service.store_for("Team_A-1") is service.store_for("team_a-1")


class TestDurableTenancy:
    def test_tenants_survive_restart(self, tmp_path, rng):
        def make_service():
            oss = ObjectStorageService(
                backend_factory=lambda bucket: FilesystemBackend(tmp_path / bucket)
            )
            return BackupService(oss, CONFIG)

        data = random_bytes(rng, 96 * 1024)
        make_service().backup("alice", "f", data)
        fresh = make_service()
        assert fresh.store_for("alice").versions("f") == [0]
        report = fresh.backup("alice", "f", data)
        assert report.dedup_ratio > 0.9
        assert fresh.restore("alice", "f", 0).data == data
