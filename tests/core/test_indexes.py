"""Tests for the similar-file index and the global index."""

import pytest

from repro.core.global_index import GlobalIndex
from repro.core.similar_index import SimilarFileIndex
from repro.fingerprint.hashing import fingerprint


def fps(prefix: str, count: int) -> list[bytes]:
    return [fingerprint(f"{prefix}{i}".encode()) for i in range(count)]


class TestSimilarFileIndex:
    @pytest.fixture
    def index(self, oss) -> SimilarFileIndex:
        return SimilarFileIndex(oss, "bucket")

    def test_latest_version_tracking(self, index):
        assert index.latest_version("f") is None
        index.register("f", 0, fps("a", 4))
        index.register("f", 1, fps("b", 4))
        assert index.latest_version("f") == 1

    def test_find_similar_by_votes(self, index):
        index.register("one", 0, fps("one", 8))
        index.register("two", 0, fps("two", 8))
        query = fps("one", 8)[:5] + fps("two", 8)[:2]
        assert index.find_similar(query) == ("one", 0)

    def test_find_similar_none_without_overlap(self, index):
        index.register("one", 0, fps("one", 8))
        assert index.find_similar(fps("other", 8)) is None

    def test_find_similar_min_votes(self, index):
        index.register("one", 0, fps("one", 8))
        query = fps("one", 8)[:1]
        assert index.find_similar(query, min_votes=2) is None
        assert index.find_similar(query, min_votes=1) == ("one", 0)

    def test_persistence_roundtrip(self, index, oss):
        index.register("dir/f", 3, fps("x", 5))
        fresh = SimilarFileIndex(oss, "bucket")
        assert fresh.latest_version("dir/f") is None
        assert fresh.load() is True
        assert fresh.latest_version("dir/f") == 3
        assert fresh.find_similar(fps("x", 5)) == ("dir/f", 3)

    def test_load_without_object(self, oss):
        assert SimilarFileIndex(oss, "bucket").load() is False

    def test_forget_version(self, index):
        index.register("f", 0, fps("x", 5))
        index.forget_version("f", 0)
        assert index.latest_version("f") is None
        assert index.find_similar(fps("x", 5)) is None

    def test_newer_registration_wins_representatives(self, index):
        shared = fps("shared", 4)
        index.register("old", 0, shared)
        index.register("new", 0, shared)
        assert index.find_similar(shared) == ("new", 0)

    def test_stored_bytes(self, index):
        assert index.stored_bytes() == 0
        index.register("f", 0, fps("x", 3))
        assert index.stored_bytes() > 0


class TestGlobalIndex:
    @pytest.fixture
    def index(self, oss) -> GlobalIndex:
        return GlobalIndex(oss, "idxbucket", bloom_capacity=1024)

    def test_assign_lookup(self, index):
        fp = fingerprint(b"chunk")
        assert index.lookup(fp) is None
        index.assign(fp, 42)
        assert index.lookup(fp) == 42

    def test_reassign_moves_owner(self, index):
        fp = fingerprint(b"chunk")
        index.assign(fp, 1)
        index.assign(fp, 2)
        assert index.lookup(fp) == 2

    def test_remove(self, index):
        fp = fingerprint(b"chunk")
        index.assign(fp, 1)
        index.remove(fp)
        assert index.lookup(fp) is None

    def test_bloom_prefilter(self, index):
        known = fingerprint(b"known")
        index.assign(known, 1)
        assert index.maybe_contains(known)
        rejections = sum(
            0 if index.maybe_contains(fingerprint(f"new{i}".encode())) else 1
            for i in range(100)
        )
        assert rejections > 90
        assert index.counters.get("bloom_rejections") == rejections

    def test_disabled_bloom_always_true(self, oss):
        index = GlobalIndex(oss, "idxbucket", use_bloom=False)
        assert index.maybe_contains(fingerprint(b"anything"))

    def test_counters(self, index):
        fp = fingerprint(b"x")
        index.assign(fp, 1)
        index.lookup(fp)
        assert index.counters.get("index_assigns") == 1
        assert index.counters.get("index_lookups") == 1

    def test_survives_flush(self, index):
        entries = {fingerprint(str(i).encode()): i for i in range(50)}
        for fp, cid in entries.items():
            index.assign(fp, cid)
        index.flush()
        for fp, cid in entries.items():
            assert index.lookup(fp) == cid

    def test_stored_bytes_after_flush(self, index):
        index.assign(fingerprint(b"x"), 1)
        index.flush()
        assert index.stored_bytes() > 0
