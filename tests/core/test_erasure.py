"""Unit tests for the pure-python Reed-Solomon codec."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.erasure import ReedSolomon, gf_inv, gf_mul


class TestGaloisField:
    def test_multiplicative_inverse(self):
        for value in range(1, 256):
            assert gf_mul(value, gf_inv(value)) == 1

    def test_inverse_of_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_multiplication_commutes_over_sample(self):
        sample = [1, 2, 3, 5, 7, 29, 76, 127, 128, 200, 255]
        for a in sample:
            for b in sample:
                assert gf_mul(a, b) == gf_mul(b, a)


class TestReedSolomon:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomon(0, 2)
        with pytest.raises(ValueError):
            ReedSolomon(4, 0)
        with pytest.raises(ValueError):
            ReedSolomon(200, 56)  # k + m > 255

    def test_encode_rejects_ragged_shards(self):
        rs = ReedSolomon(2, 1)
        with pytest.raises(ValueError):
            rs.encode([b"abcd", b"ab"])

    def test_roundtrip_all_data_present(self):
        rs = ReedSolomon(3, 2)
        shards = [b"aaaa", b"bbbb", b"cccc"]
        parity = rs.encode(shards)
        assert len(parity) == 2
        available = {i: s for i, s in enumerate(shards)}
        assert rs.decode(available, 4) == shards

    @pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (5, 3)])
    def test_mds_any_k_of_n_decode(self, k, m):
        """The code is MDS: every k-subset of the k+m shards rebuilds all
        data shards — so any m losses, in any pattern, are survivable."""
        import random

        rng = random.Random(k * 100 + m)
        shard_len = 64
        data = [bytes(rng.randrange(256) for _ in range(shard_len)) for _ in range(k)]
        rs = ReedSolomon(k, m)
        parity = rs.encode(data)
        everything = data + parity
        for kept in combinations(range(k + m), k):
            available = {index: everything[index] for index in kept}
            assert rs.decode(available, shard_len) == data, kept

    def test_decode_needs_k_shards(self):
        rs = ReedSolomon(4, 2)
        data = [bytes([i] * 8) for i in range(4)]
        parity = rs.encode(data)
        available = {0: data[0], 1: data[1], 4: parity[0]}  # only 3 of 4
        with pytest.raises(ValueError):
            rs.decode(available, 8)

    def test_zero_padded_short_stripe(self):
        """Stripes shorter than k members pad with zero shards, the same
        convention the durability tier uses for partially filled stripes."""
        rs = ReedSolomon(4, 2)
        shard_len = 16
        data = [b"x" * shard_len, b"y" * shard_len]
        shards = data + [bytes(shard_len)] * 2
        parity = rs.encode(shards)
        # Lose both real data shards; decode from zeros + parity.
        available = {2: shards[2], 3: shards[3], 4: parity[0], 5: parity[1]}
        assert rs.decode(available, shard_len)[:2] == data
