"""Tests for snapshots (full-volume backup runs) and G-node deep clean."""

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.core.snapshot import Snapshot, SnapshotNotFoundError, SnapshotStore
from repro.errors import VersionNotFoundError
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


class TestSnapshotStore:
    def test_put_get_roundtrip(self, oss):
        store = SnapshotStore(oss)
        snapshot = Snapshot("00000001", {"a": 0, "b": 3})
        store.put(snapshot)
        loaded = store.get("00000001")
        assert loaded.members == {"a": 0, "b": 3}

    def test_missing_raises(self, oss):
        with pytest.raises(SnapshotNotFoundError):
            SnapshotStore(oss).get("missing")

    def test_ids_allocate_in_order(self, oss):
        store = SnapshotStore(oss)
        first, second = store.allocate_id(), store.allocate_id()
        assert first < second

    def test_recover_resumes_sequence(self, oss):
        store = SnapshotStore(oss)
        store.put(Snapshot(store.allocate_id(), {"a": 0}))
        fresh = SnapshotStore(oss)
        assert fresh.recover() == 1
        assert fresh.allocate_id() == "00000001"

    def test_list_and_delete(self, oss):
        store = SnapshotStore(oss)
        store.put(Snapshot(store.allocate_id()))
        store.put(Snapshot(store.allocate_id()))
        assert store.list_ids() == ["00000000", "00000001"]
        assert store.delete("00000000") is True
        assert store.list_ids() == ["00000001"]


class TestSystemSnapshots:
    @pytest.fixture
    def volume(self, rng):
        return {
            "db/a.tbl": random_bytes(rng, 128 * 1024),
            "db/b.tbl": random_bytes(rng, 96 * 1024),
            "logs/c.log": random_bytes(rng, 64 * 1024),
        }

    def test_backup_and_restore_snapshot(self, volume):
        store = SlimStore(CONFIG)
        snapshot_id, reports = store.backup_snapshot(volume)
        assert len(reports) == 3
        restored = store.restore_snapshot(snapshot_id)
        assert restored == volume

    def test_multiple_snapshots_restore_point_in_time(self, volume, rng):
        store = SlimStore(CONFIG)
        first_id, _ = store.backup_snapshot(volume)
        second_volume = dict(volume)
        second_volume["db/a.tbl"] = mutate(rng, volume["db/a.tbl"], 2, 8192)
        second_id, _ = store.backup_snapshot(second_volume)
        assert store.restore_snapshot(first_id) == volume
        assert store.restore_snapshot(second_id) == second_volume

    def test_delete_snapshot_fifo(self, volume, rng):
        store = SlimStore(CONFIG)
        first_id, _ = store.backup_snapshot(volume)
        second_volume = {p: mutate(rng, d, 1, 4096) for p, d in volume.items()}
        second_id, _ = store.backup_snapshot(second_volume)
        with pytest.raises(VersionNotFoundError):
            store.delete_snapshot(second_id)
        store.delete_snapshot(first_id)
        assert store.snapshots.list_ids() == [second_id]
        assert store.restore_snapshot(second_id) == second_volume

    def test_snapshot_dedup_across_runs(self, volume):
        store = SlimStore(CONFIG)
        store.backup_snapshot(volume)
        _, reports = store.backup_snapshot(volume)
        assert all(r.dedup_ratio > 0.9 for r in reports)


class TestDeepClean:
    def test_reclaims_marked_deleted_bytes(self, rng):
        store = SlimStore(
            CONFIG.with_overrides(container_rewrite_threshold=0.9)
        )
        data = random_bytes(rng, 256 * 1024)
        store.backup("f", data)
        for _ in range(4):
            data = mutate(rng, data, 3, 16 * 1024)
            store.backup("f", data)
        # With the rewrite threshold at 0.9, stale bytes accumulate.
        before = store.space_report().container_bytes
        reclaimed = store.gnode.deep_clean()
        after = store.space_report().container_bytes
        assert reclaimed > 0
        assert after == before - reclaimed
        # Every version still restores after the sweep.
        assert store.restore("f", 4).data == data

    def test_idempotent(self, rng):
        store = SlimStore(CONFIG)
        store.backup("f", random_bytes(rng, 128 * 1024))
        store.gnode.deep_clean()
        assert store.gnode.deep_clean() == 0

    def test_prunes_dangling_index_entries(self, rng):
        store = SlimStore(CONFIG)
        data = random_bytes(rng, 128 * 1024)
        store.backup("f", data)
        store.backup("f", mutate(rng, data, 4, 32 * 1024))
        store.delete_version("f", 0)
        dangling_before = sum(
            1
            for _fp, cid in store.storage.global_index.iter_items()
            if not store.storage.containers.exists(cid)
        )
        store.gnode.deep_clean()
        dangling_after = sum(
            1
            for _fp, cid in store.storage.global_index.iter_items()
            if not store.storage.containers.exists(cid)
        )
        assert dangling_after == 0
        if dangling_before:
            assert dangling_before > 0  # the sweep actually removed some
        # The surviving version still restores.
        assert store.restore("f", 1).data is not None


class TestReservedIds:
    def test_reserved_ids_advance_the_sequence(self, oss):
        store = SnapshotStore(oss, "b")
        store.put(Snapshot("00000000", {"f": 0}))
        fresh = SnapshotStore(oss, "b")
        # A journaled run claimed id 00000001 but crashed before
        # publishing its manifest: a new run must not reuse it.
        fresh.recover(reserved_ids=["00000001"])
        assert fresh.allocate_id() == "00000002"

    def test_recover_without_reservations_matches_manifests(self, oss):
        store = SnapshotStore(oss, "b")
        store.put(Snapshot("00000003", {"f": 0}))
        fresh = SnapshotStore(oss, "b")
        assert fresh.recover() == 1
        assert fresh.allocate_id() == "00000004"

    def test_non_numeric_keys_and_reservations_are_skipped(self, oss):
        oss.create_bucket("b")
        oss.put_object("b", SnapshotStore.PREFIX + "README", b"x")
        store = SnapshotStore(oss, "b")
        assert store.recover(reserved_ids=["latest"]) == 0
        assert store.allocate_id() == "00000000"
