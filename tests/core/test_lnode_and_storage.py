"""Tests for the stateless L-node wrapper and the storage layer bundle."""

import pytest

from repro.core.config import SlimStoreConfig
from repro.core.lnode import LNode
from repro.core.storage import StorageLayer
from tests.conftest import random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


@pytest.fixture
def storage(oss) -> StorageLayer:
    return StorageLayer.create(oss)


class TestStorageLayer:
    def test_create_wires_all_stores(self, storage, oss):
        assert storage.oss is oss
        assert storage.containers.oss is oss
        assert storage.similar_index.latest_version("x") is None
        assert storage.global_index.lookup(b"\x00" * 20) is None

    def test_bloom_toggle(self, oss):
        layer = StorageLayer.create(oss, use_bloom=False)
        assert layer.global_index.maybe_contains(b"\x01" * 20)


class TestLNode:
    def test_backup_and_restore_through_node(self, storage, rng):
        node = LNode(0, CONFIG, storage)
        data = random_bytes(rng, 128 * 1024)
        result = node.backup("f", data)
        assert result.version == 0
        restored = node.restore("f", 0)
        assert restored.data == data
        assert node.jobs_executed == 2

    def test_nodes_share_storage_state(self, storage, rng):
        """Statelessness: any node can serve any job because all state is
        in the storage layer."""
        first = LNode(0, CONFIG, storage)
        second = LNode(1, CONFIG, storage)
        data = random_bytes(rng, 128 * 1024)
        first.backup("f", data)
        result = second.backup("f", data)  # dedups against node 0's work
        assert result.dedup_ratio > 0.9
        assert second.restore("f", 0).data == data

    def test_fresh_engine_per_job(self, storage, rng):
        """No dedup state leaks between jobs on the same node."""
        node = LNode(0, CONFIG, storage)
        data = random_bytes(rng, 64 * 1024)
        node.backup("a", data)
        result = node.backup("b", random_bytes(rng, 64 * 1024))
        assert result.counters.get("detect_none") == 1
