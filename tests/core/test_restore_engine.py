"""Tests for the L-node restore job (Section V)."""

import pytest

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine
from repro.core.restore import RestoreEngine
from repro.core.storage import StorageLayer
from repro.errors import RestoreError, VersionNotFoundError
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=128 * 1024,
    segment_bytes=64 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=64 * 1024,
    merge_threshold=3,
    restore_cache_bytes=1 << 20,
)


@pytest.fixture
def storage(oss) -> StorageLayer:
    return StorageLayer.create(oss)


@pytest.fixture
def engines(storage):
    return BackupEngine(CONFIG, storage), RestoreEngine(CONFIG, storage)


class TestRestoreCorrectness:
    def test_roundtrip_single_version(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 300 * 1024)
        backup.backup("f", data)
        result = restore.restore("f", 0)
        assert result.data == data

    def test_roundtrip_many_versions(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 256 * 1024)
        versions = [data]
        for _ in range(6):
            data = mutate(rng, data, runs=2, run_bytes=8 * 1024)
            versions.append(data)
        for payload in versions:
            backup.backup("f", payload)
        for version, payload in enumerate(versions):
            assert restore.restore("f", version).data == payload

    def test_restore_with_self_reference(self, engines, rng):
        backup, restore = engines
        block = random_bytes(rng, 32 * 1024)
        data = block + random_bytes(rng, 64 * 1024) + block + block
        backup.backup("f", data)
        assert restore.restore("f", 0).data == data

    def test_restore_superchunked_version(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 256 * 1024)
        for _ in range(5):
            backup.backup("f", data)
        result = restore.restore("f", 4)
        assert result.data == data

    def test_missing_version_raises(self, engines):
        _, restore = engines
        with pytest.raises(VersionNotFoundError):
            restore.restore("ghost", 0)

    def test_empty_file(self, engines):
        backup, restore = engines
        backup.backup("empty", b"")
        assert restore.restore("empty", 0).data == b""

    def test_verification_catches_corruption(self, engines, storage, rng):
        backup, restore = engines
        data = random_bytes(rng, 128 * 1024)
        result = backup.backup("f", data)
        cid = result.new_container_ids[0]
        payload = bytearray(storage.containers.read_data(cid))
        payload[10] ^= 0xFF
        storage.oss.put_object("slimstore", f"containers/{cid:012d}.data", bytes(payload))
        with pytest.raises(RestoreError):
            restore.restore("f", 0, verify=True)


class TestRestoreEfficiency:
    def test_containers_read_once(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 512 * 1024)
        for _ in range(4):
            backup.backup("f", data)
            data = mutate(rng, data, runs=2, run_bytes=8 * 1024)
        result = restore.restore("f", 3)
        assert result.counters.get("repeated_container_reads") == 0

    def test_read_amplification_bounded(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 512 * 1024)
        backup.backup("f", data)
        result = restore.restore("f", 0)
        # A fresh version's chunks are contiguous: amplification near 1.
        assert result.read_amplification < 1.3

    def test_prefetch_threads_speed_up(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 512 * 1024)
        backup.backup("f", data)
        slow = restore.restore("f", 0, prefetch_threads=0, verify=False)
        fast = restore.restore("f", 0, prefetch_threads=6, verify=False)
        assert fast.throughput_mb_s > 2 * slow.throughput_mb_s
        assert fast.data == slow.data

    def test_throughput_metrics(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 256 * 1024)
        backup.backup("f", data)
        result = restore.restore("f", 0)
        assert result.logical_bytes == len(data)
        assert result.containers_read >= 2
        assert result.containers_per_100mb > 0
        assert result.elapsed_seconds > 0


class TestEventPipeline:
    def test_elapsed_comes_from_event_schedule(self, engines, rng):
        backup, restore = engines
        backup.backup("f", random_bytes(rng, 256 * 1024))
        result = restore.restore("f", 0)
        assert result.pipeline is not None
        assert result.elapsed_seconds == result.pipeline.elapsed_seconds
        assert result.setup_seconds > 0
        assert len(result.read_seconds) == result.containers_read
        assert len(result.record_cpu) == len(result.record_reads)

    def test_zero_threads_matches_closed_form(self, engines, rng):
        """With no prefetching and no redirects the event schedule is the
        ``cpu + download`` closed form, term for term."""
        backup, restore = engines
        backup.backup("f", random_bytes(rng, 256 * 1024))
        result = restore.restore("f", 0, prefetch_threads=0)
        assert result.counters.get("global_index_redirects") == 0
        assert result.elapsed_seconds == pytest.approx(
            result.closed_form_elapsed_seconds, rel=1e-9
        )

    def test_prefetched_elapsed_bounded_by_closed_form(self, engines, rng):
        """The event schedule approaches ``max(cpu, download/threads)``
        from above: startup and tail effects, never free speedup."""
        backup, restore = engines
        backup.backup("f", random_bytes(rng, 512 * 1024))
        result = restore.restore("f", 0, prefetch_threads=4, ranged=False)
        assert result.elapsed_seconds >= result.closed_form_elapsed_seconds * 0.999
        assert result.counters.get("prefetch_stalls") >= 1

    def test_ranged_restore_identical_bytes_fewer_read(self, engines, rng):
        backup, restore = engines
        data = random_bytes(rng, 256 * 1024)
        for _ in range(5):
            backup.backup("f", data)
            data = mutate(rng, data, runs=3, run_bytes=4 * 1024)
        whole = restore.restore("f", 4, ranged=False)
        ranged = restore.restore("f", 4, ranged=True)
        assert ranged.data == whole.data
        assert (
            ranged.counters.get("container_bytes_read")
            < whole.counters.get("container_bytes_read")
        )
        assert ranged.counters.get("ranged_bytes_saved") > 0
        assert ranged.counters.get("ranged_reads") >= ranged.containers_read
        assert ranged.read_amplification < whole.read_amplification

    def test_whole_mode_keeps_seed_traffic(self, engines, storage, rng):
        """Whole-container mode must not add any OSS requests over the
        seed access pattern (no metadata pre-reads)."""
        backup, restore = engines
        backup.backup("f", random_bytes(rng, 256 * 1024))
        before = storage.oss.stats.snapshot()
        result = restore.restore("f", 0, ranged=False)
        requests = storage.oss.stats.diff(before).get_requests
        # recipe + per-container data+meta (meta piggybacked = own request
        # in stats, no extra latency).
        assert requests == 1 + 2 * result.containers_read
        assert result.counters.get("plan_meta_reads") == 0


class TestGlobalIndexRedirect:
    def test_restore_after_chunk_moved(self, engines, storage, rng):
        """A chunk deleted from its recorded container is found through
        the global index (the Section VI-A redirect)."""
        backup, restore = engines
        data = random_bytes(rng, 128 * 1024)
        result = backup.backup("f", data)
        cid = result.new_container_ids[0]
        meta = storage.containers.read_meta(cid)
        victim = meta.live_entries()[0]

        # Move the chunk: store a copy in a fresh container, point the
        # global index there, delete the original.
        payload = storage.containers.read_data(cid)
        chunk = payload[victim.offset : victim.offset + victim.size]
        builder = storage.containers.new_builder(CONFIG.container_bytes)
        builder.add_chunk(victim.fp, chunk)
        storage.containers.write(builder)
        storage.global_index.assign(victim.fp, builder.container_id)
        meta.mark_deleted(victim.fp)
        storage.containers.update_meta(meta)
        storage.containers.rewrite(cid)

        result = restore.restore("f", 0)
        assert result.data == data
        assert result.counters.get("global_index_redirects") == 1

    def test_unresolvable_chunk_raises(self, engines, storage, rng):
        backup, restore = engines
        data = random_bytes(rng, 64 * 1024)
        result = backup.backup("f", data)
        cid = result.new_container_ids[0]
        meta = storage.containers.read_meta(cid)
        meta.mark_deleted(meta.live_entries()[0].fp)
        storage.containers.update_meta(meta)
        with pytest.raises(RestoreError):
            restore.restore("f", 0)

    def test_stale_index_entry_raises_with_container_id(self, engines, storage, rng):
        """An index entry pointing at a container that does not hold the
        chunk fails loudly, naming the container."""
        backup, restore = engines
        result = backup.backup("f", random_bytes(rng, 64 * 1024))
        cid = result.new_container_ids[0]
        meta = storage.containers.read_meta(cid)
        victim = meta.live_entries()[0]
        meta.mark_deleted(victim.fp)
        storage.containers.update_meta(meta)
        other = storage.containers.new_builder(CONFIG.container_bytes)
        other.add_chunk(b"\x42" * 20, b"unrelated bytes")
        storage.containers.write(other)
        storage.global_index.assign(victim.fp, other.container_id)
        for ranged in (False, True):
            with pytest.raises(RestoreError, match=f"container {other.container_id}"):
                restore.restore("f", 0, ranged=ranged)


class TestRedirectAfterAging:
    """Restoring old versions after reverse dedup + compaction moved
    chunks (Section VI-A: 'extra query of the global index')."""

    def test_old_version_restores_through_redirects(self, aged_store):
        store, payloads = aged_store
        result = store.restore("f", 0, ranged=False)
        assert result.data == payloads[0]
        assert result.counters.get("global_index_redirects") > 0

    def test_ranged_reads_still_apply_after_aging(self, aged_store):
        store, payloads = aged_store
        result = store.restore("f", 0, ranged=True)
        assert result.data == payloads[0]
        assert result.counters.get("global_index_redirects") > 0
        assert result.counters.get("ranged_reads") > 0
        assert result.counters.get("ranged_bytes_saved") > 0
        # Plan-time resolution reads each container once, even the ones
        # only reachable through the index.
        assert result.counters.get("repeated_container_reads") == 0

    def test_every_aged_version_roundtrips_both_modes(self, aged_store):
        store, payloads = aged_store
        for version, payload in enumerate(payloads):
            assert store.restore("f", version, ranged=False).data == payload
            assert store.restore("f", version, ranged=True).data == payload
