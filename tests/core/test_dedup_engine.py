"""Tests for the L-node backup engine (Section IV)."""

import pytest

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine, DedupCache
from repro.core.recipe import ChunkRecord
from repro.core.storage import StorageLayer
from repro.fingerprint.hashing import fingerprint
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=128 * 1024,
    segment_bytes=64 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=64 * 1024,
    merge_threshold=3,
)


@pytest.fixture
def storage(oss) -> StorageLayer:
    return StorageLayer.create(oss)


@pytest.fixture
def engine(storage) -> BackupEngine:
    return BackupEngine(CONFIG, storage)


def record_for(index: int, ordinal: int = 0) -> ChunkRecord:
    return ChunkRecord(
        fp=fingerprint(f"r{ordinal}/{index}".encode()), container_id=0, size=4096
    )


class TestDedupCache:
    def test_lookup_after_insert(self):
        cache = DedupCache()
        records = [record_for(i) for i in range(4)]
        cache.insert_segment(0, records)
        found, location = cache.lookup(records[2].fp)
        assert found is records[2]
        assert location == (0, 2)

    def test_lookup_missing(self):
        assert DedupCache().lookup(b"\x00" * 20) is None

    def test_successor_within_segment(self):
        cache = DedupCache()
        records = [record_for(i) for i in range(3)]
        cache.insert_segment(0, records)
        following, location = cache.successor((0, 0))
        assert following is records[1]
        assert location == (0, 1)

    def test_successor_crosses_segment_boundary(self):
        cache = DedupCache()
        cache.insert_segment(0, [record_for(0, 0)])
        cache.insert_segment(1, [record_for(0, 1)])
        following, location = cache.successor((0, 0))
        assert location == (1, 0)

    def test_successor_none_at_end(self):
        cache = DedupCache()
        cache.insert_segment(0, [record_for(0)])
        assert cache.successor((0, 0)) is None

    def test_lru_eviction(self):
        cache = DedupCache(max_segments=2)
        segments = [[record_for(i, ordinal)] for ordinal, i in enumerate(range(3))]
        for ordinal, records in enumerate(segments):
            cache.insert_segment(ordinal, records)
        assert not cache.has_segment(0)
        assert cache.lookup(segments[0][0].fp) is None
        assert cache.lookup(segments[2][0].fp) is not None

    def test_superchunk_first_fp_indexed(self):
        cache = DedupCache()
        sc = ChunkRecord(
            fp=fingerprint(b"sc"), container_id=0, size=32768,
            is_superchunk=True, first_fp=fingerprint(b"first"), first_size=4096,
        )
        cache.insert_segment(0, [sc])
        found, _ = cache.lookup(fingerprint(b"first"))
        assert found is sc


class TestFirstBackup:
    def test_everything_unique(self, engine, rng):
        data = random_bytes(rng, 256 * 1024)
        result = engine.backup("f", data)
        assert result.version == 0
        assert result.counters.get("dup_chunks") == 0
        assert result.stored_chunk_bytes == len(data)
        assert result.dedup_ratio == 0.0

    def test_self_reference_deduplicated(self, engine, rng):
        block = random_bytes(rng, 64 * 1024)
        data = block + random_bytes(rng, 64 * 1024) + block
        result = engine.backup("f", data)
        assert result.counters.get("local_duplicates") > 0
        assert result.dedup_ratio > 0.2

    def test_recipe_persisted(self, engine, storage, rng):
        data = random_bytes(rng, 128 * 1024)
        result = engine.backup("f", data)
        recipe = storage.recipes.get_recipe("f", 0)
        assert recipe.total_bytes == len(data)
        assert recipe.chunk_count() == result.recipe.chunk_count()
        index = storage.recipes.get_recipe_index("f", 0)
        assert len(index) > 0

    def test_version_zero_registered(self, engine, storage, rng):
        engine.backup("f", random_bytes(rng, 64 * 1024))
        assert storage.similar_index.latest_version("f") == 0


class TestIncrementalBackup:
    def test_high_dedup_on_small_change(self, engine, rng):
        data = random_bytes(rng, 512 * 1024)
        engine.backup("f", data)
        changed = mutate(rng, data, runs=2, run_bytes=8 * 1024)
        result = engine.backup("f", changed)
        assert result.version == 1
        assert result.dedup_ratio > 0.85

    def test_detects_by_name(self, engine, rng):
        data = random_bytes(rng, 128 * 1024)
        engine.backup("f", data)
        result = engine.backup("f", data)
        assert result.counters.get("detect_by_name") == 1

    def test_detects_renamed_file_by_similarity(self, engine, rng):
        data = random_bytes(rng, 512 * 1024)
        engine.backup("old_name", data)
        result = engine.backup("new_name", mutate(rng, data, 1, 4096))
        assert result.counters.get("detect_by_similarity") == 1
        assert result.dedup_ratio > 0.5
        assert result.version == 0  # first version under the new name

    def test_unrelated_file_stores_everything(self, engine, rng):
        engine.backup("a", random_bytes(rng, 128 * 1024))
        other = random_bytes(rng, 128 * 1024)
        result = engine.backup("b", other)
        assert result.counters.get("detect_none") == 1
        assert result.stored_chunk_bytes == len(other)

    def test_skip_chunking_engages(self, engine, rng):
        data = random_bytes(rng, 512 * 1024)
        engine.backup("f", data)
        result = engine.backup("f", mutate(rng, data, 1, 4096))
        assert result.counters.get("skip_success") > 50

    def test_skip_chunking_disabled(self, storage, rng):
        engine = BackupEngine(CONFIG.with_overrides(skip_chunking=False), storage)
        data = random_bytes(rng, 256 * 1024)
        engine.backup("f", data)
        result = engine.backup("f", data)
        assert result.counters.get("skip_success") == 0
        assert result.dedup_ratio > 0.9  # dedup still works via the cache

    def test_duplicate_times_increment(self, engine, storage, rng):
        data = random_bytes(rng, 128 * 1024)
        for _ in range(3):
            engine.backup("f", data)
        recipe = storage.recipes.get_recipe("f", 2)
        times = [r.duplicate_times for r in recipe.all_records() if not r.is_superchunk]
        assert times and max(times) == 2


class TestChunkMerging:
    def test_superchunks_form_at_threshold(self, engine, rng):
        data = random_bytes(rng, 256 * 1024)
        results = [engine.backup("f", data) for _ in range(5)]
        trigger = results[CONFIG.merge_threshold]
        assert trigger.counters.get("superchunks_created") > 0
        # Once merged, later versions match whole superchunks.
        assert results[-1].counters.get("superchunk_hits") > 0

    def test_superchunk_records_well_formed(self, engine, storage, rng):
        data = random_bytes(rng, 256 * 1024)
        for _ in range(5):
            engine.backup("f", data)
        recipe = storage.recipes.get_recipe("f", 4)
        superchunks = [r for r in recipe.all_records() if r.is_superchunk]
        assert superchunks
        for record in superchunks:
            assert CONFIG.min_superchunk_bytes <= record.size
            assert record.size <= CONFIG.max_superchunk_bytes
            assert len(record.first_fp) == 20
            assert 0 < record.first_size < record.size

    def test_merging_disabled(self, storage, rng):
        engine = BackupEngine(CONFIG.with_overrides(chunk_merging=False), storage)
        data = random_bytes(rng, 256 * 1024)
        for _ in range(5):
            result = engine.backup("f", data)
        assert result.counters.get("superchunks_created") == 0

    def test_partial_superchunk_failure_recovers(self, engine, storage, rng):
        data = random_bytes(rng, 256 * 1024)
        for _ in range(4):
            engine.backup("f", data)
        changed = mutate(rng, data, runs=1, run_bytes=2048)
        result = engine.backup("f", changed)
        # The damaged superchunk fails fingerprint verification but the
        # stream still deduplicates outside it.
        assert result.dedup_ratio > 0.5
        restored_recipe = storage.recipes.get_recipe("f", 4)
        assert restored_recipe.total_bytes == len(changed)


class TestRewriteHook:
    def test_rewrite_containers_store_duplicates_again(self, engine, storage, rng):
        data = random_bytes(rng, 128 * 1024)
        first = engine.backup("f", data)
        target = set(first.new_container_ids)
        result = engine.backup("f", data, rewrite_containers=target)
        assert result.counters.get("rewritten_chunks") > 0
        assert result.stored_chunk_bytes > 0


class TestAccounting:
    def test_logical_bytes_match_input(self, engine, rng):
        data = random_bytes(rng, 200 * 1024)
        result = engine.backup("f", data)
        assert result.logical_bytes == len(data)
        assert sum(r.size for r in result.recipe.all_records()) == len(data)

    def test_breakdown_nonzero(self, engine, rng):
        result = engine.backup("f", random_bytes(rng, 128 * 1024))
        assert result.breakdown.cpu_seconds() > 0
        assert result.breakdown.upload > 0
        assert result.throughput_mb_s > 0

    def test_referenced_containers_only_for_duplicates(self, engine, rng):
        data = random_bytes(rng, 128 * 1024)
        first = engine.backup("f", data)
        assert first.referenced_containers == {}
        second = engine.backup("f", data)
        assert set(second.referenced_containers) <= set(first.new_container_ids)
        assert sum(count for count, _ in second.referenced_containers.values()) > 0
