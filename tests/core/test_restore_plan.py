"""Tests for the restore planner (container schedule + ranged spans)."""

import pytest

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine
from repro.core.restore_plan import ReadSpan, RestorePlanner, coalesce_spans
from repro.core.storage import StorageLayer
from repro.errors import RestoreError
from repro.sim.metrics import Counters, TimeBreakdown
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=128 * 1024,
    segment_bytes=64 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=64 * 1024,
    merge_threshold=3,
)


@pytest.fixture
def storage(oss) -> StorageLayer:
    return StorageLayer.create(oss)


@pytest.fixture
def planner(storage) -> RestorePlanner:
    return RestorePlanner(storage)


def plan_for(planner, storage, path, version, ranged, gap=CONFIG.ranged_read_gap_bytes):
    records = storage.recipes.get_recipe(path, version).all_records()
    return planner.plan(records, ranged, gap, TimeBreakdown(), Counters())


class TestCoalesceSpans:
    def test_adjacent_extents_merge(self):
        spans = coalesce_spans({(0, 100), (100, 50)}, gap_bytes=0)
        assert spans == [ReadSpan(0, 150)]

    def test_gap_within_threshold_merges(self):
        spans = coalesce_spans({(0, 100), (150, 100)}, gap_bytes=64)
        assert spans == [ReadSpan(0, 250)]

    def test_gap_beyond_threshold_splits(self):
        spans = coalesce_spans({(0, 100), (200, 100)}, gap_bytes=64)
        assert spans == [ReadSpan(0, 100), ReadSpan(200, 100)]

    def test_overlapping_extents_merge(self):
        # A superchunk and an alias into its first chunk.
        spans = coalesce_spans({(0, 4096), (0, 512), (1024, 512)}, gap_bytes=0)
        assert spans == [ReadSpan(0, 4096)]

    def test_contained_extent_does_not_shrink_span(self):
        spans = coalesce_spans({(0, 4096), (512, 128)}, gap_bytes=0)
        assert spans == [ReadSpan(0, 4096)]

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            coalesce_spans({(0, 10)}, gap_bytes=-1)


class TestWholeContainerPlan:
    def test_one_read_per_container_in_first_use_order(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        backup.backup("f", random_bytes(rng, 400 * 1024))
        plan = plan_for(planner, storage, "f", 0, ranged=False)
        cids = [read.container_id for read in plan.reads]
        assert len(cids) == len(set(cids))
        assert [read.first_use for read in plan.reads] == sorted(
            read.first_use for read in plan.reads
        )
        assert all(read.spans is None for read in plan.reads)
        assert plan.bytes_saved == 0

    def test_whole_mode_charges_no_plan_traffic(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        backup.backup("f", random_bytes(rng, 200 * 1024))
        records = storage.recipes.get_recipe("f", 0).all_records()
        before = storage.oss.stats.snapshot()
        plan = planner.plan(
            records, False, CONFIG.ranged_read_gap_bytes, TimeBreakdown(), Counters()
        )
        assert storage.oss.stats.diff(before).get_requests == 0
        assert plan.plan_seconds == 0.0

    def test_read_for_record_marks_first_uses(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        backup.backup("f", random_bytes(rng, 300 * 1024))
        plan = plan_for(planner, storage, "f", 0, ranged=False)
        triggered = [i for i in plan.read_for_record if i >= 0]
        assert triggered == list(range(len(plan.reads)))


class TestRangedPlan:
    def test_fresh_version_plans_full_coverage(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        data = random_bytes(rng, 300 * 1024)
        backup.backup("f", data)
        plan = plan_for(planner, storage, "f", 0, ranged=True)
        assert all(read.spans for read in plan.reads)
        # A fresh version is contiguous: planned bytes cover the payload.
        assert plan.planned_bytes >= len(data)

    def test_aged_version_saves_bytes(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        data = random_bytes(rng, 256 * 1024)
        for _ in range(6):
            backup.backup("f", data)
            data = mutate(rng, data, runs=3, run_bytes=4 * 1024)
        # The latest version reuses a few chunks from many old containers:
        # ranged reads skip the stale bytes of those containers.
        plan = plan_for(planner, storage, "f", 5, ranged=True, gap=0)
        assert plan.bytes_saved > 0
        for read in plan.reads:
            assert read.planned_bytes <= read.container_bytes

    def test_meta_reads_counted_and_charged(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        backup.backup("f", random_bytes(rng, 300 * 1024))
        counters = Counters()
        records = storage.recipes.get_recipe("f", 0).all_records()
        plan = planner.plan(records, True, 0, TimeBreakdown(), counters)
        assert counters.get("plan_meta_reads") == len(plan.reads)
        assert plan.plan_seconds > 0

    def test_moved_chunk_resolved_at_plan_time(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        data = random_bytes(rng, 128 * 1024)
        result = backup.backup("f", data)
        cid = result.new_container_ids[0]
        meta = storage.containers.read_meta(cid)
        victim = meta.live_entries()[0]
        payload = storage.containers.read_data(cid)
        chunk = payload[victim.offset : victim.offset + victim.size]
        builder = storage.containers.new_builder(CONFIG.container_bytes)
        builder.add_chunk(victim.fp, chunk)
        storage.containers.write(builder)
        storage.global_index.assign(victim.fp, builder.container_id)
        meta.mark_deleted(victim.fp)
        storage.containers.update_meta(meta)

        counters = Counters()
        records = storage.recipes.get_recipe("f", 0).all_records()
        plan = planner.plan(records, True, 0, TimeBreakdown(), counters)
        assert counters.get("global_index_redirects") == 1
        resolved_cids = {r.container_id for r in plan.resolved}
        assert builder.container_id in resolved_cids

    def test_unknown_chunk_raises_with_container_id(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        result = backup.backup("f", random_bytes(rng, 64 * 1024))
        cid = result.new_container_ids[0]
        meta = storage.containers.read_meta(cid)
        victim = meta.live_entries()[0]
        meta.mark_deleted(victim.fp)
        storage.containers.update_meta(meta)
        storage.global_index.remove(victim.fp)
        records = storage.recipes.get_recipe("f", 0).all_records()
        with pytest.raises(RestoreError, match=f"container {cid}"):
            planner.plan(records, True, 0, TimeBreakdown(), Counters())

    def test_stale_index_entry_raises_with_container_id(self, planner, storage, rng):
        backup = BackupEngine(CONFIG, storage)
        result = backup.backup("f", random_bytes(rng, 64 * 1024))
        cid = result.new_container_ids[0]
        meta = storage.containers.read_meta(cid)
        victim = meta.live_entries()[0]
        meta.mark_deleted(victim.fp)
        storage.containers.update_meta(meta)
        # Point the index at a container that never held the chunk.
        other = storage.containers.new_builder(CONFIG.container_bytes)
        other.add_chunk(b"\x99" * 20, b"unrelated")
        storage.containers.write(other)
        storage.global_index.assign(victim.fp, other.container_id)
        records = storage.recipes.get_recipe("f", 0).all_records()
        with pytest.raises(RestoreError, match=f"container {other.container_id}"):
            planner.plan(records, True, 0, TimeBreakdown(), Counters())
