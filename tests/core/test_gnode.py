"""Tests for G-node space management (Sections V-B, VI-A)."""

import pytest

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine
from repro.core.gnode import GNode
from repro.core.restore import RestoreEngine
from repro.core.storage import StorageLayer
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    chunk_merging=False,
    sparse_utilization_threshold=0.5,
    container_rewrite_threshold=0.2,
)


@pytest.fixture
def storage(oss) -> StorageLayer:
    return StorageLayer.create(oss)


@pytest.fixture
def nodes(storage):
    return (
        BackupEngine(CONFIG, storage),
        RestoreEngine(CONFIG, storage),
        GNode(CONFIG, storage),
    )


class TestReverseDedup:
    def test_registers_new_chunks(self, nodes, storage, rng):
        backup, _, gnode = nodes
        result = backup.backup("f", random_bytes(rng, 128 * 1024))
        report = gnode.reverse_dedup(result.new_container_ids)
        assert report.chunks_scanned > 0
        assert report.duplicates_removed == 0
        # Every stored chunk is now known to the global index.
        meta = storage.containers.read_meta(result.new_container_ids[0])
        for entry in meta.live_entries():
            assert storage.global_index.lookup(entry.fp) is not None

    def test_finds_cross_file_duplicates(self, nodes, storage, rng):
        """Two unrelated paths with identical content: the L-node misses
        the duplicates (no name/similarity match registered yet at probe
        time for file 'b'... it will find them similar), so force the case
        with distinct payload framing."""
        backup, _, gnode = nodes
        shared = random_bytes(rng, 64 * 1024)
        first = backup.backup("a", random_bytes(rng, 32 * 1024) + shared)
        gnode.reverse_dedup(first.new_container_ids)
        # Different header defeats the header-probe similarity detection.
        second = backup.backup("b", random_bytes(rng, 512 * 1024) + shared)
        report = gnode.reverse_dedup(second.new_container_ids)
        if second.counters.get("detect_none"):
            assert report.duplicates_removed > 0
            assert report.bytes_marked_deleted > 0

    def test_reverse_dedup_deletes_old_copy(self, nodes, storage, rng):
        backup, restore, gnode = nodes
        data = random_bytes(rng, 128 * 1024)
        first = backup.backup("a", data)
        gnode.reverse_dedup(first.new_container_ids)
        # Back up identical content under an unrelated name but with the
        # similarity detection crippled so everything stores again.
        storage.similar_index.forget_version("a", 0)
        second = backup.backup("b", data)
        report = gnode.reverse_dedup(second.new_container_ids)
        assert report.duplicates_removed > 0
        # Old copies are marked deleted in the OLD containers, and both
        # files still restore (the old one via global-index redirects).
        assert restore.restore("b", 0).data == data
        assert restore.restore("a", 0).data == data

    def test_rewrite_threshold_reclaims_space(self, nodes, storage, rng):
        backup, _, gnode = nodes
        data = random_bytes(rng, 128 * 1024)
        first = backup.backup("a", data)
        gnode.reverse_dedup(first.new_container_ids)
        before = storage.containers.stored_bytes()
        storage.similar_index.forget_version("a", 0)
        second = backup.backup("b", data)
        report = gnode.reverse_dedup(second.new_container_ids)
        assert report.containers_rewritten > 0
        assert report.bytes_reclaimed > 0
        # Total never exceeds two copies and shrinks below it.
        assert storage.containers.stored_bytes() < before * 2

    def test_idempotent_on_reprocessing(self, nodes, rng):
        backup, _, gnode = nodes
        result = backup.backup("f", random_bytes(rng, 64 * 1024))
        gnode.reverse_dedup(result.new_container_ids)
        report = gnode.reverse_dedup(result.new_container_ids)
        assert report.duplicates_removed == 0


class TestSparseCompaction:
    def _build_fragmented(self, backup, gnode, rng, versions=6):
        """Age a file until old containers serve the new version sparsely."""
        data = random_bytes(rng, 256 * 1024)
        results = [backup.backup("f", data)]
        for _ in range(versions - 1):
            data = mutate(rng, data, runs=4, run_bytes=16 * 1024)
            results.append(backup.backup("f", data))
        return data, results

    def test_compaction_triggers_on_sparse_containers(self, nodes, rng):
        backup, _, gnode = nodes
        _, results = self._build_fragmented(backup, gnode, rng)
        reports = [gnode.compact_sparse(result) for result in results]
        assert any(report.sparse_containers for report in reports)
        moving = [r for r in reports if r.sparse_containers]
        assert all(r.chunks_moved > 0 for r in moving)

    def test_recipe_updated_and_restorable(self, nodes, storage, rng):
        backup, restore, gnode = nodes
        data, results = self._build_fragmented(backup, gnode, rng)
        report = gnode.compact_sparse(results[-1])
        latest = storage.recipes.get_recipe("f", results[-1].version)
        if report.sparse_containers:
            moved_into = set(report.new_container_ids)
            assert moved_into & latest.referenced_containers()
        assert restore.restore("f", results[-1].version).data == data

    def test_old_versions_survive_compaction(self, nodes, storage, rng):
        backup, restore, gnode = nodes
        data = random_bytes(rng, 256 * 1024)
        payloads = [data]
        backup.backup("f", data)
        for _ in range(5):
            payloads.append(mutate(rng, payloads[-1], runs=4, run_bytes=16 * 1024))
            result = backup.backup("f", payloads[-1])
            gnode.reverse_dedup(result.new_container_ids)
            gnode.compact_sparse(result)
        for version, payload in enumerate(payloads):
            assert restore.restore("f", version).data == payload, version

    def test_new_version_locality_improves(self, nodes, rng):
        backup, restore, gnode = nodes
        _, results = self._build_fragmented(backup, gnode, rng, versions=8)
        before = restore.restore("f", results[-1].version)
        report = gnode.compact_sparse(results[-1])
        after = restore.restore("f", results[-1].version)
        if report.sparse_containers:
            assert after.containers_read <= before.containers_read
        assert after.data == before.data

    def test_no_compaction_when_disabled_by_threshold(self, storage, rng):
        config = CONFIG.with_overrides(sparse_utilization_threshold=0.01)
        backup = BackupEngine(config, storage)
        gnode = GNode(config, storage)
        data = random_bytes(rng, 128 * 1024)
        backup.backup("f", data)
        result = backup.backup("f", mutate(rng, data, 2, 8192))
        report = gnode.compact_sparse(result)
        assert report.sparse_containers == []
        assert report.chunks_moved == 0
