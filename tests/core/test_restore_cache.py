"""Tests for the look-ahead window and the full-vision cache."""

import pytest

from repro.core.container import ChunkLocation, ContainerMeta
from repro.core.recipe import ChunkRecord
from repro.core.restore_cache import (
    STATUS_IN_WINDOW,
    STATUS_LATER,
    STATUS_USELESS,
    FullVisionCache,
    LookAheadWindow,
)
from repro.fingerprint.hashing import fingerprint
from repro.kvstore.bloom import CountingBloomFilter


def records_for(sequence: list[str]) -> list[ChunkRecord]:
    return [
        ChunkRecord(fp=fingerprint(name.encode()), container_id=0, size=100)
        for name in sequence
    ]


def fp_of(name: str) -> bytes:
    return fingerprint(name.encode())


class TestLookAheadWindow:
    def test_initial_window(self):
        law = LookAheadWindow(records_for(["a", "b", "c", "d"]), window=2)
        assert fp_of("a") in law
        assert fp_of("b") in law
        assert fp_of("c") not in law

    def test_advance_slides(self):
        law = LookAheadWindow(records_for(["a", "b", "c", "d"]), window=2)
        law.advance_past(0)
        assert fp_of("a") not in law
        assert fp_of("c") in law

    def test_duplicate_fps_counted(self):
        law = LookAheadWindow(records_for(["a", "a", "b"]), window=2)
        law.advance_past(0)
        assert fp_of("a") in law  # second occurrence still inside
        law.advance_past(1)
        assert fp_of("a") not in law

    def test_upcoming_container_ids_in_order(self):
        records = records_for(["a", "b", "c"])
        records[0].container_id = 5
        records[1].container_id = 3
        records[2].container_id = 5
        law = LookAheadWindow(records, window=3)
        assert law.upcoming_container_ids() == [5, 3]

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            LookAheadWindow(records_for(["a"]), window=0)


def build_cache(sequence: list[str], window: int = 2, memory: int = 1 << 20,
                disk: int = 1 << 20):
    records = records_for(sequence)
    cbf = CountingBloomFilter(max(8, len(records) * 4), 0.001)
    for record in records:
        cbf.add(record.fp)
    law = LookAheadWindow(records, window)
    cache = FullVisionCache(memory, disk, cbf, law)
    return records, law, cache


def container_with(chunks: dict[str, bytes]) -> tuple[ContainerMeta, bytes]:
    meta = ContainerMeta(0)
    payload = bytearray()
    for name, data in chunks.items():
        meta.add(ChunkLocation(fp_of(name), len(payload), len(data)))
        payload += data
    return meta, bytes(payload)


class TestStatuses:
    def test_status_classification(self):
        _, law, cache = build_cache(["a", "b", "c", "d"], window=2)
        assert cache.status_of(fp_of("a")) == STATUS_IN_WINDOW
        assert cache.status_of(fp_of("c")) == STATUS_LATER
        assert cache.status_of(fp_of("zz")) == STATUS_USELESS

    def test_status_changes_as_stream_advances(self):
        _, law, cache = build_cache(["a", "b", "c"], window=1)
        assert cache.status_of(fp_of("a")) == STATUS_IN_WINDOW
        cache.consume(fp_of("a"))
        law.advance_past(0)
        assert cache.status_of(fp_of("a")) == STATUS_USELESS


class TestInsertAndLookup:
    def test_only_useful_chunks_cached(self):
        _, _, cache = build_cache(["a", "b"], window=2)
        meta, payload = container_with(
            {"a": b"A" * 100, "b": b"B" * 100, "junk": b"J" * 100}
        )
        inserted = cache.insert_container(meta, payload)
        assert inserted == 2
        assert cache.lookup(fp_of("a")) == b"A" * 100
        assert cache.lookup(fp_of("junk")) is None

    def test_deleted_entries_skipped(self):
        _, _, cache = build_cache(["a"], window=1)
        meta, payload = container_with({"a": b"A" * 100})
        meta.mark_deleted(fp_of("a"))
        assert cache.insert_container(meta, payload) == 0

    def test_consume_decrements_to_useless(self):
        _, law, cache = build_cache(["a", "b", "a"], window=1)
        meta, payload = container_with({"a": b"A" * 100})
        cache.insert_container(meta, payload)
        cache.consume(fp_of("a"))
        # One reference left (position 2): still cached.
        law.advance_past(0)
        assert cache.lookup(fp_of("a")) is not None

    def test_cbf_underflow_tolerated(self):
        _, _, cache = build_cache(["a"], window=1)
        cache.consume(fp_of("a"))
        cache.consume(fp_of("a"))  # second consume underflows silently
        assert cache.counters.get("cbf_underflows") == 1


class TestEvictionPolicy:
    def test_useless_evicted_first(self):
        sequence = ["a", "b", "c", "d", "e", "f"]
        _, law, cache = build_cache(sequence, window=6, memory=350, disk=10_000)
        meta, payload = container_with({name: name.encode() * 100 for name in "abc"})
        cache.insert_container(meta, payload)
        for index, name in enumerate("abc"):
            cache.consume(fp_of(name))
            law.advance_past(index)
        # a-c consumed and out of window: useless.  New useful chunks push
        # them out rather than the useful ones.
        meta2, payload2 = container_with({name: name.encode() * 100 for name in "def"})
        cache.insert_container(meta2, payload2)
        assert cache.lookup(fp_of("d")) is not None
        assert cache.lookup(fp_of("e")) is not None

    def test_later_chunks_demoted_to_disk_not_lost(self):
        sequence = [chr(ord("a") + i) for i in range(10)]
        _, _, cache = build_cache(sequence, window=2, memory=250, disk=10_000)
        meta, payload = container_with(
            {name: name.encode() * 100 for name in sequence}
        )
        cache.insert_container(meta, payload)
        # Everything is useful (in window or in CBF): overflow goes to the
        # disk layer instead of being dropped.
        assert cache.disk_used > 0
        for name in sequence:
            assert cache.lookup(fp_of(name)) is not None, name

    def test_disk_promotion_counts(self):
        sequence = [chr(ord("a") + i) for i in range(10)]
        _, _, cache = build_cache(sequence, window=2, memory=250, disk=10_000)
        meta, payload = container_with(
            {name: name.encode() * 100 for name in sequence}
        )
        cache.insert_container(meta, payload)
        for name in sequence:
            cache.lookup(fp_of(name))
        assert cache.counters.get("disk_promotions") >= 1

    def test_memory_capacity_validated(self):
        records = records_for(["a"])
        cbf = CountingBloomFilter(8)
        law = LookAheadWindow(records, 1)
        with pytest.raises(ValueError):
            FullVisionCache(0, 100, cbf, law)


class TestIncrementalContainerOrdering:
    """upcoming_container_ids is maintained as the window slides, not
    recomputed by scanning the window."""

    def test_order_tracks_window_position(self):
        records = records_for(["a", "b", "c", "d", "e"])
        for index, cid in enumerate([7, 3, 7, 9, 3]):
            records[index].container_id = cid
        law = LookAheadWindow(records, window=3)
        assert law.upcoming_container_ids() == [7, 3]
        law.advance_past(0)  # window: b, c, d
        assert law.upcoming_container_ids() == [3, 7, 9]
        law.advance_past(1)  # window: c, d, e
        assert law.upcoming_container_ids() == [7, 9, 3]
        law.advance_past(3)  # window: e
        assert law.upcoming_container_ids() == [3]

    def test_matches_brute_force_on_long_stream(self):
        import random

        rand = random.Random(7)
        records = records_for([f"chunk-{i}" for i in range(200)])
        for record in records:
            record.container_id = rand.randrange(12)
        window = 16
        law = LookAheadWindow(records, window)
        for index in range(len(records)):
            lo, hi = index, min(len(records), index + window)
            expected, seen = [], set()
            for record in records[lo:hi]:
                if record.container_id not in seen:
                    seen.add(record.container_id)
                    expected.append(record.container_id)
            assert law.upcoming_container_ids() == expected, index
            law.advance_past(index)


class TestWindowTransitions:
    def test_enter_exit_callbacks_fire_once_per_transition(self):
        records = records_for(["a", "b", "a", "c"])
        law = LookAheadWindow(records, window=2)
        entered, exited = [], []
        law.on_enter = entered.append
        law.on_exit = exited.append
        law.advance_past(0)  # window [1, 3): a's count moves from pos 0 to 2
        assert exited == []  # a never left — no spurious transition
        law.advance_past(1)  # window [2, 4): b left, c entered
        assert fp_of("b") in exited
        assert fp_of("c") in entered

    def test_useless_chunk_dropped_at_window_exit(self):
        _, law, cache = build_cache(["a", "b", "c"], window=1)
        meta, payload = container_with({"a": b"A" * 100})
        cache.insert_container(meta, payload)
        cache.consume(fp_of("a"))
        assert cache.memory_used == 100  # still S_I until the window moves
        law.advance_past(0)
        # a left the window with a zero CBF count: dropped eagerly.
        assert cache.memory_used == 0
        assert cache.peek(fp_of("a")) is None

    def test_later_chunk_kept_at_window_exit(self):
        _, law, cache = build_cache(["a", "b", "a"], window=1)
        meta, payload = container_with({"a": b"A" * 100})
        cache.insert_container(meta, payload)
        cache.consume(fp_of("a"))
        law.advance_past(0)
        # Another reference at position 2: demoted to S_L, not dropped.
        assert cache.status_of(fp_of("a")) == STATUS_LATER
        assert cache.peek(fp_of("a")) == b"A" * 100


class TestInsertPromotion:
    def test_disk_resident_window_chunk_promoted_at_insert(self):
        """An S_I chunk sitting on disk is promoted when its container is
        read, not left to pay a disk round trip at consume time."""
        sequence = [chr(ord("a") + i) for i in range(10)]
        _, _, cache = build_cache(sequence, window=10, memory=250, disk=10_000)
        meta, payload = container_with(
            {name: name.encode() * 100 for name in sequence}
        )
        # First insertion overflows memory: later chunks land on disk.
        cache.insert_container(meta, payload)
        assert cache.disk_used > 0
        # Re-inserting the container (a repeated read in a bigger run)
        # promotes disk-resident in-window chunks back to memory.
        cache.insert_container(meta, payload)
        assert cache.counters.get("insert_promotions") >= 1
        assert cache.counters.get("disk_promotions") == 0

    def test_peek_never_counts_or_promotes(self):
        _, _, cache = build_cache(["a"], window=1)
        meta, payload = container_with({"a": b"A" * 100})
        cache.insert_container(meta, payload)
        assert cache.peek(fp_of("a")) == b"A" * 100
        assert cache.peek(fp_of("zz")) is None
        assert cache.counters.get("memory_hits") == 0
        assert cache.counters.get("cache_misses") == 0
