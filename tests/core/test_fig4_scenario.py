"""The paper's Fig 4 worked example, as an executable test.

Fig 4 illustrates why the full-vision cache exists: a restore stream with
*large-span containers* (a container whose chunks are used far apart),
*self-reference chunks* (the same chunk appearing repeatedly), and *sparse
containers* (a container contributing a single chunk).  Under a small LRU
or LAW-limited cache these force repeated container reads; the FV cache
reads every container exactly once.

We rebuild the scenario literally: a chunk stream referencing eight
containers with the fragment patterns of the figure, then restore it
through the FV cache and through the baselines.
"""

import pytest

from repro.baselines.caches import LRUContainerRestorer
from repro.core.container import ContainerStore
from repro.core.recipe import ChunkRecord
from repro.core.restore_cache import FullVisionCache, LookAheadWindow
from repro.fingerprint.hashing import fingerprint
from repro.kvstore.bloom import CountingBloomFilter

CHUNK = 512  # bytes per chunk in the toy scenario

#: Container layout: which chunks live where (a la Fig 4's C1..C8).
CONTAINERS = {
    1: ["A", "B", "C"],
    2: ["D", "E"],
    3: ["F", "G", "H"],
    4: ["J", "K"],
    5: ["L", "M"],
    6: ["P", "Q", "R"],
    7: ["S", "T"],
    8: ["U", "V", "W"],
}

#: The restore stream: A repeats (self-reference), P and Q are used far
#: apart while other containers churn between them (large span for C6),
#: D is C2's only useful chunk (sparse), H and C reappear beyond any
#: plausible look-ahead window.
STREAM = [
    "A", "B", "D", "F", "G", "P", "U", "V", "J", "K",
    "L", "M", "S", "T", "Q", "A", "R", "E", "H", "C", "W",
]


def chunk_data(name: str) -> bytes:
    return name.encode() * CHUNK


@pytest.fixture
def scenario(oss):
    """Containers on OSS plus the stream's chunk records."""
    store = ContainerStore(oss, "fig4")
    locations: dict[str, int] = {}
    for cid, names in CONTAINERS.items():
        builder = store.new_builder(1 << 20)
        for name in names:
            builder.add_chunk(fingerprint(chunk_data(name)), chunk_data(name))
            locations[name] = builder.container_id
        store.write(builder)
    records = [
        ChunkRecord(
            fp=fingerprint(chunk_data(name)),
            container_id=locations[name],
            size=len(chunk_data(name)),
        )
        for name in STREAM
    ]
    expected = b"".join(chunk_data(name) for name in STREAM)
    return store, records, expected, sorted(set(locations.values()))


def restore_with_fv(store, records, memory_bytes: int, window: int = 4):
    """Drive the FV cache over the stream, counting container reads."""
    cbf = CountingBloomFilter(len(records) * 4, 0.0001)
    for record in records:
        cbf.add(record.fp)
    law = LookAheadWindow(records, window)
    cache = FullVisionCache(memory_bytes, 1 << 20, cbf, law)
    reads = []
    output = bytearray()
    for index, record in enumerate(records):
        data = cache.lookup(record.fp)
        if data is None:
            meta = store.read_meta(record.container_id)
            payload = store.read_data(record.container_id)
            reads.append(record.container_id)
            cache.insert_container(meta, payload)
            data = cache.lookup(record.fp)
        output += data
        cache.consume(record.fp)
        law.advance_past(index)
    return bytes(output), reads


class TestFig4:
    def test_fv_reads_each_container_exactly_once(self, scenario):
        store, records, expected, live_cids = scenario
        output, reads = restore_with_fv(store, records, memory_bytes=64 * 1024)
        assert output == expected
        assert sorted(reads) == live_cids  # all 8, each once

    def test_fv_survives_fragments_beyond_law(self, scenario):
        """Chunks H and C reappear long after a 4-record LAW expired —
        the CBF (full vision) keeps them anyway."""
        store, records, expected, _ = scenario
        output, reads = restore_with_fv(
            store, records, memory_bytes=64 * 1024, window=2
        )
        assert output == expected
        assert len(reads) == len(CONTAINERS)

    def test_fv_tight_memory_uses_disk_layer_not_rereads(self, scenario):
        store, records, expected, _ = scenario
        # Memory holds ~4 chunks; the disk layer absorbs the rest.
        output, reads = restore_with_fv(store, records, memory_bytes=4 * CHUNK + 64)
        assert output == expected
        assert len(reads) == len(CONTAINERS)

    def test_lru_rereads_fig4_fragments(self, scenario):
        """The motivating failure: a 3-container LRU cache re-reads the
        large-span container C6 (P...Q) and the self-reference C1 (A...A)."""
        store, records, expected, _ = scenario
        result = LRUContainerRestorer(store, cache_containers=3).restore(records)
        assert result.data == expected
        assert result.containers_read > len(CONTAINERS)

    def test_every_chunk_status_transition(self, scenario):
        """A appears twice: in-window initially, 'later' after the first
        use, useless after the second."""
        store, records, _, __ = scenario
        cbf = CountingBloomFilter(len(records) * 4, 0.0001)
        for record in records:
            cbf.add(record.fp)
        law = LookAheadWindow(records, 4)
        cache = FullVisionCache(1 << 20, 1 << 20, cbf, law)
        fp_a = fingerprint(chunk_data("A"))
        assert cache.status_of(fp_a) == "S_I"      # stream position 0
        cache.consume(fp_a)
        law.advance_past(0)
        assert cache.status_of(fp_a) == "S_L"      # reappears at 15
        for index in range(1, 16):
            law.advance_past(index)
        cache.consume(fp_a)
        assert cache.status_of(fp_a) == "S_U"      # fully consumed
