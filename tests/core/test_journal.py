"""The OSS-backed intent journal."""

import pytest

from repro.core.journal import INTENT_KINDS, IntentJournal
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel


@pytest.fixture
def journal(oss: ObjectStorageService) -> IntentJournal:
    return IntentJournal(oss, "slimstore")


class TestLifecycle:
    def test_begin_persists_one_object(self, oss, journal):
        seq = journal.begin("backup", path="f", watermark=3)
        assert oss.peek_size("slimstore", f"journal/{seq:012d}.json") is not None

    def test_unknown_kind_rejected(self, journal):
        with pytest.raises(ValueError):
            journal.begin("defragment")

    def test_close_deletes_the_entry(self, oss, journal):
        seq = journal.begin("reverse_dedup", container_ids=[1, 2])
        journal.close(seq)
        assert list(oss.peek_keys("slimstore", "journal/")) == []

    def test_sequence_numbers_are_monotonic(self, journal):
        seqs = [journal.begin(kind) for kind in INTENT_KINDS]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_update_overwrites_payload_in_place(self, journal):
        seq = journal.begin("snapshot", snapshot_id="00000000", members={})
        journal.update(
            seq, "snapshot", snapshot_id="00000000", members={"f": 0}
        )
        (intent,) = journal.open_intents()
        assert intent.seq == seq
        assert intent.payload["members"] == {"f": 0}


class TestRecovery:
    def test_recover_returns_survivors_oldest_first(self, oss):
        journal = IntentJournal(oss, "slimstore")
        a = journal.begin("backup", path="a", watermark=0)
        b = journal.begin("compaction", path="b", version=1, watermark=4, sparse=[2])
        journal.close(a)

        fresh = IntentJournal(oss, "slimstore")
        survivors = fresh.recover()
        assert [(i.seq, i.kind) for i in survivors] == [(b, "compaction")]
        assert survivors[0].payload == {
            "path": "b", "version": 1, "watermark": 4, "sparse": [2]
        }

    def test_recover_resumes_the_sequence_past_survivors(self, oss):
        journal = IntentJournal(oss, "slimstore")
        seq = journal.begin("backup", path="a", watermark=0)

        fresh = IntentJournal(oss, "slimstore")
        fresh.recover()
        assert fresh.begin("backup", path="b", watermark=1) > seq

    def test_recover_skips_foreign_keys(self, oss):
        oss.create_bucket("slimstore")
        oss.put_object("slimstore", "journal/README", b"not an intent")
        oss.put_object("slimstore", "journal/xyz.json", b"{}")
        journal = IntentJournal(oss, "slimstore")
        assert journal.recover() == []

    def test_open_intents_does_not_rewind_the_sequence(self, oss):
        journal = IntentJournal(oss, "slimstore")
        seq = journal.begin("backup", path="a", watermark=0)
        journal.close(seq)
        assert journal.open_intents() == []
        assert journal.begin("backup", path="b", watermark=1) == seq + 1

    def test_truncate_drops_everything(self, oss):
        journal = IntentJournal(oss, "slimstore")
        journal.begin("backup", path="a", watermark=0)
        journal.begin("rewrite", container_id=1, meta="00", data_sha="ab")
        assert journal.truncate() == 2
        assert journal.open_intents() == []
