"""Tests for containers, metadata and the container store."""

import pytest

from repro.core.container import ChunkLocation, ContainerMeta, ContainerStore
from repro.errors import ContainerError
from repro.fingerprint.hashing import fingerprint


@pytest.fixture
def store(oss) -> ContainerStore:
    return ContainerStore(oss, "bucket")


def fill(builder, chunks: list[bytes]):
    entries = []
    for payload in chunks:
        entries.append(builder.add_chunk(fingerprint(payload), payload))
    return entries


class TestContainerMeta:
    def test_find_by_fingerprint(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        assert meta.find(b"\x01" * 20).size == 100
        assert meta.find(b"\x02" * 20) is None

    def test_accounting_excludes_aliases(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        meta.add(ChunkLocation(b"\x02" * 20, 0, 40, alias=True))
        assert meta.total_chunks() == 1
        assert meta.live_bytes() == 100
        assert len(meta.live_lookup_entries()) == 2

    def test_mark_deleted(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        assert meta.mark_deleted(b"\x01" * 20) is True
        assert meta.mark_deleted(b"\x01" * 20) is False
        assert meta.live_chunks() == 0
        assert meta.stale_fraction() == 1.0

    def test_mark_deleted_keeps_alias_alive(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        meta.add(ChunkLocation(b"\x02" * 20, 0, 40, alias=True))
        meta.mark_deleted(b"\x01" * 20)
        alias = meta.find(b"\x02" * 20)
        assert not alias.deleted

    def test_serialisation_roundtrip(self):
        meta = ContainerMeta(7)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        meta.add(ChunkLocation(b"\x02" * 20, 100, 50, deleted=True))
        meta.add(ChunkLocation(b"\x03" * 20, 0, 25, alias=True))
        restored = ContainerMeta.from_bytes(meta.to_bytes())
        assert restored.container_id == 7
        assert restored.total_chunks() == 2
        assert restored.find(b"\x02" * 20).deleted
        assert restored.find(b"\x03" * 20).alias

    def test_bad_fingerprint_length_rejected(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"short", 0, 10))
        with pytest.raises(ContainerError):
            meta.to_bytes()


class TestContainerBuilder:
    def test_capacity_tracking(self, store):
        builder = store.new_builder(1000)
        fill(builder, [b"a" * 600])
        assert not builder.is_full()
        fill(builder, [b"b" * 500])
        assert builder.is_full()
        assert builder.payload_bytes == 1100

    def test_alias_bounds_checked(self, store):
        builder = store.new_builder(1000)
        fill(builder, [b"a" * 100])
        with pytest.raises(ContainerError):
            builder.add_alias(b"\x01" * 20, 50, 100)

    def test_ids_are_unique(self, store):
        first = store.new_builder(100)
        second = store.new_builder(100)
        assert first.container_id != second.container_id


class TestContainerStore:
    def test_write_and_read(self, store):
        builder = store.new_builder(1 << 20)
        payloads = [b"alpha" * 100, b"beta" * 200]
        fill(builder, payloads)
        store.write(builder)
        cid = builder.container_id
        assert store.exists(cid)
        data = store.read_data(cid)
        meta = store.read_meta(cid)
        entry = meta.find(fingerprint(payloads[0]))
        assert data[entry.offset : entry.offset + entry.size] == payloads[0]

    def test_empty_write_rejected(self, store):
        with pytest.raises(ContainerError):
            store.write(store.new_builder(100))

    def test_read_chunk_ranged(self, store):
        builder = store.new_builder(1 << 20)
        fill(builder, [b"first" * 10, b"second" * 10])
        store.write(builder)
        assert store.read_chunk(builder.container_id, fingerprint(b"second" * 10)) == b"second" * 10
        assert store.read_chunk(builder.container_id, b"\x00" * 20) is None

    def test_delete(self, store):
        builder = store.new_builder(100)
        fill(builder, [b"x"])
        store.write(builder)
        assert store.delete(builder.container_id) is True
        assert not store.exists(builder.container_id)
        assert store.delete(builder.container_id) is False

    def test_stored_bytes(self, store):
        builder = store.new_builder(1 << 20)
        fill(builder, [b"x" * 1000])
        store.write(builder)
        assert store.stored_bytes() == 1000

    def test_rewrite_drops_deleted(self, store):
        builder = store.new_builder(1 << 20)
        payloads = [b"keep" * 100, b"drop" * 100, b"stay" * 100]
        fill(builder, payloads)
        store.write(builder)
        cid = builder.container_id
        meta = store.read_meta(cid)
        meta.mark_deleted(fingerprint(b"drop" * 100))
        store.update_meta(meta)

        reclaimed = store.rewrite(cid)
        assert reclaimed == 400
        new_meta = store.read_meta(cid)
        assert new_meta.find(fingerprint(b"drop" * 100)) is None
        data = store.read_data(cid)
        entry = new_meta.find(fingerprint(b"stay" * 100))
        assert data[entry.offset : entry.offset + entry.size] == b"stay" * 100

    def test_rewrite_rebases_alias_with_live_owner(self, store):
        builder = store.new_builder(1 << 20)
        fill(builder, [b"padding" * 50])
        sc_payload = b"superchunk-data" * 40
        entry = builder.add_chunk(fingerprint(sc_payload), sc_payload)
        builder.add_alias(b"\x07" * 20, entry.offset, 15)
        store.write(builder)
        cid = builder.container_id
        meta = store.read_meta(cid)
        meta.mark_deleted(fingerprint(b"padding" * 50))
        store.update_meta(meta)

        store.rewrite(cid)
        new_meta = store.read_meta(cid)
        alias = new_meta.find(b"\x07" * 20)
        data = store.read_data(cid)
        assert data[alias.offset : alias.offset + alias.size] == sc_payload[:15]

    def test_rewrite_materialises_orphan_alias(self, store):
        builder = store.new_builder(1 << 20)
        sc_payload = b"superchunk-data" * 40
        entry = builder.add_chunk(fingerprint(sc_payload), sc_payload)
        builder.add_alias(b"\x07" * 20, entry.offset, 15)
        store.write(builder)
        cid = builder.container_id
        meta = store.read_meta(cid)
        meta.mark_deleted(fingerprint(sc_payload))
        store.update_meta(meta)

        store.rewrite(cid)
        new_meta = store.read_meta(cid)
        alias = new_meta.find(b"\x07" * 20)
        assert alias is not None and not alias.alias  # promoted to a chunk
        data = store.read_data(cid)
        assert data[alias.offset : alias.offset + alias.size] == sc_payload[:15]

    def test_rewrite_to_empty_deletes_container(self, store):
        builder = store.new_builder(1 << 20)
        fill(builder, [b"only" * 10])
        store.write(builder)
        cid = builder.container_id
        meta = store.read_meta(cid)
        meta.mark_deleted(fingerprint(b"only" * 10))
        store.update_meta(meta)
        store.rewrite(cid)
        assert not store.exists(cid)


def write_container(store: ContainerStore, chunks: list[bytes]) -> int:
    builder = store.new_builder(1 << 20)
    fill(builder, chunks)
    store.write(builder)
    return builder.container_id


class TestRevive:
    def test_revive_flips_a_deleted_flag_back(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        meta.mark_deleted(b"\x01" * 20)
        assert meta.revive(b"\x01" * 20) is True
        assert meta.live_chunks() == 1

    def test_revive_noop_for_live_or_unknown(self):
        meta = ContainerMeta(1)
        meta.add(ChunkLocation(b"\x01" * 20, 0, 100))
        assert meta.revive(b"\x01" * 20) is False
        assert meta.revive(b"\x02" * 20) is False


class TestTornPairQuarantine:
    def test_data_only_pair_is_quarantined_not_live(self, oss, store):
        cid = write_container(store, [b"a" * 64])
        oss.delete_object("bucket", ContainerStore.META_KEY.format(cid=cid))

        fresh = ContainerStore(oss, "bucket")
        assert fresh.recover() == 0
        assert fresh.torn_pairs == {cid: "data"}
        assert not fresh.exists(cid)

    def test_meta_only_pair_is_quarantined_not_live(self, oss, store):
        cid = write_container(store, [b"a" * 64])
        oss.delete_object("bucket", ContainerStore.DATA_KEY.format(cid=cid))

        fresh = ContainerStore(oss, "bucket")
        fresh.recover()
        assert fresh.torn_pairs == {cid: "meta"}
        assert not fresh.exists(cid)

    def test_torn_ids_still_reserve_the_id_space(self, oss, store):
        cid = write_container(store, [b"a" * 64])
        oss.delete_object("bucket", ContainerStore.META_KEY.format(cid=cid))
        fresh = ContainerStore(oss, "bucket")
        fresh.recover()
        assert fresh.peek_next_id() == cid + 1

    def test_discard_torn_removes_the_remnant(self, oss, store):
        cid = write_container(store, [b"a" * 64])
        oss.delete_object("bucket", ContainerStore.META_KEY.format(cid=cid))
        fresh = ContainerStore(oss, "bucket")
        fresh.recover()
        fresh.discard_torn(cid)
        assert fresh.torn_pairs == {}
        assert oss.peek_size("bucket", ContainerStore.DATA_KEY.format(cid=cid)) is None


class TestTwoPhaseDeletion:
    def make_store(self, oss, grace: int) -> ContainerStore:
        return ContainerStore(oss, "bucket", grace_epochs=grace)

    def test_zero_grace_deletes_immediately(self, oss):
        store = self.make_store(oss, 0)
        cid = write_container(store, [b"a" * 64])
        assert store.delete(cid) is True
        assert oss.peek_size("bucket", ContainerStore.DATA_KEY.format(cid=cid)) is None
        assert not store.is_tombstoned(cid)

    def test_grace_entombs_and_keeps_objects_readable(self, oss):
        store = self.make_store(oss, 1)
        payload = b"a" * 64
        cid = write_container(store, [payload])
        assert store.delete(cid) is True
        assert not store.exists(cid)  # invisible to new work
        assert store.is_tombstoned(cid)
        # ... but both objects are still physically readable.
        assert payload in store.read_data(cid)
        assert store.read_meta(cid).live_chunks() == 1

    def test_reap_waits_out_the_grace_epochs(self, oss):
        store = self.make_store(oss, 2)
        cid = write_container(store, [b"a" * 64])
        store.delete(cid)
        assert store.reap_expired() == (0, [])
        store.advance_epoch()
        assert store.reap_expired() == (0, [])
        store.advance_epoch()
        reclaimed, reaped = store.reap_expired()
        assert reaped == [cid]
        assert reclaimed == 64
        assert oss.peek_size("bucket", ContainerStore.TOMB_KEY.format(cid=cid)) is None

    def test_tombstones_and_epoch_survive_recover(self, oss):
        store = self.make_store(oss, 3)
        cid = write_container(store, [b"a" * 64])
        store.advance_epoch()
        store.delete(cid)

        fresh = self.make_store(oss, 3)
        fresh.recover()
        assert fresh.current_epoch == 1
        assert fresh.tombstoned_ids() == [cid]
        assert not fresh.exists(cid)
        assert fresh.torn_pairs == {}

    def test_interrupted_reap_is_reported_as_partial(self, oss):
        store = self.make_store(oss, 0)
        cid = write_container(store, [b"a" * 64])
        # Simulate a reap that crashed after the data+meta deletes but
        # before the tombstone delete.
        oss.put_object("bucket", ContainerStore.TOMB_KEY.format(cid=cid), b'{"epoch": 0}')
        oss.delete_object("bucket", ContainerStore.DATA_KEY.format(cid=cid))
        oss.delete_object("bucket", ContainerStore.META_KEY.format(cid=cid))

        fresh = self.make_store(oss, 0)
        fresh.recover()
        assert fresh.partial_reaps == {cid}
        fresh.finish_reap(cid)
        assert fresh.partial_reaps == set()
        assert oss.peek_size("bucket", ContainerStore.TOMB_KEY.format(cid=cid)) is None

    def test_purge_bypasses_the_grace(self, oss):
        store = self.make_store(oss, 5)
        cid = write_container(store, [b"a" * 64])
        assert store.purge(cid) is True
        assert not store.is_tombstoned(cid)
        assert oss.peek_size("bucket", ContainerStore.DATA_KEY.format(cid=cid)) is None


class TestJournaledRewrite:
    def make_journaled_store(self, oss):
        from repro.core.journal import IntentJournal

        journal = IntentJournal(oss, "bucket")
        return ContainerStore(oss, "bucket", journal=journal), journal

    def test_successful_rewrite_leaves_no_open_intent(self, oss):
        store, journal = self.make_journaled_store(oss)
        builder = store.new_builder(1 << 20)
        entries = fill(builder, [b"a" * 64, b"b" * 64])
        store.write(builder)
        meta = store.read_meta(builder.container_id)
        meta.mark_deleted(entries[0].fp)
        store.update_meta(meta)
        store.rewrite(builder.container_id)
        assert journal.open_intents() == []
        assert store.read_meta(builder.container_id).live_chunks() == 1

    def test_complete_rewrite_rolls_forward_on_matching_sha(self, oss):
        import hashlib

        store, journal = self.make_journaled_store(oss)
        cid = write_container(store, [b"a" * 64, b"b" * 64])
        new_payload = b"b" * 64
        new_meta = ContainerMeta(cid)
        new_meta.add(ChunkLocation(fingerprint(new_payload), 0, 64))
        # Data put landed, meta put did not (the crash window).
        oss.put_object("bucket", ContainerStore.DATA_KEY.format(cid=cid), new_payload)

        done = store.complete_rewrite(
            cid, new_meta.to_bytes(), hashlib.sha1(new_payload).hexdigest()
        )
        assert done is True
        assert store.read_meta(cid).live_chunks() == 1
        assert store.read_data(cid) == new_payload

    def test_complete_rewrite_discards_on_sha_mismatch(self, oss):
        store, _journal = self.make_journaled_store(oss)
        cid = write_container(store, [b"a" * 64])
        before = store.read_meta(cid).to_bytes()

        done = store.complete_rewrite(cid, b"bogus-meta", "0" * 40)
        assert done is False
        assert store.read_meta(cid).to_bytes() == before
