"""Hypothesis properties for the durability tier's placement invariants."""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SlimStore
from repro.core.durability import (
    CLASS_ERASURE,
    CLASS_REPLICATED,
    CLASS_SINGLE,
    DurabilityManager,
    ReplicationPolicy,
)
from tests.conftest import SMALL_CONFIG, make_version_chain

#: Colder classes order strictly below hotter ones.
_RANK = {CLASS_SINGLE: 0, CLASS_ERASURE: 1, CLASS_REPLICATED: 2}


@st.composite
def policies(draw):
    """Any parameter set the :class:`ReplicationPolicy` validator accepts."""
    fault_domains = draw(st.integers(2, 6))
    replica_count = draw(st.integers(2, fault_domains))
    hot_refs = draw(st.integers(1, 12))
    cold_refs = draw(st.integers(1, hot_refs))
    parity_shards = draw(st.integers(1, 4))
    data_shards = draw(
        st.integers(1, max(1, fault_domains * parity_shards - parity_shards))
    )
    return ReplicationPolicy(
        replica_count=replica_count,
        hot_refs=hot_refs,
        cold_refs=cold_refs,
        data_shards=data_shards,
        parity_shards=parity_shards,
        fault_domains=fault_domains,
    )


@given(policies(), st.integers(0, 64), st.integers(0, 64))
def test_class_monotone_in_refcount(policy, refs_a, refs_b):
    """More references never buys a *weaker* durability class."""
    lo, hi = sorted((refs_a, refs_b))
    assert _RANK[policy.classify(lo)] <= _RANK[policy.classify(hi)]


@given(policies(), st.lists(st.integers(0, 1 << 20), max_size=40))
def test_stripe_grouping_respects_domain_capacity(policy, cids):
    """Greedy grouping never lets one fault domain carry more than ``m``
    member shards of a stripe, and always leaves room for the parity."""
    manager = SimpleNamespace(policy=policy)
    items = [(cid, b"") for cid in cids]
    groups = DurabilityManager._group_for_stripes(manager, items)
    m = policy.parity_shards
    assert sorted(cid for group in groups for cid, _ in group) == sorted(cids)
    for group in groups:
        assert len(group) <= policy.data_shards
        counts = [0] * policy.fault_domains
        for cid, _ in group:
            counts[policy.primary_domain(cid)] += 1
        assert max(counts, default=0) <= m
        # Parity fits: total shards never exceed the domains' capacity.
        assert len(group) + m <= policy.fault_domains * m


@given(
    fault_domains=st.integers(2, 4),
    replica_count=st.integers(2, 4),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=10)
def test_replicas_never_share_a_fault_domain(fault_domains, replica_count, seed):
    """Whatever the geometry, every replicated container's copies land on
    pairwise-distinct domains, none of them the primary's."""
    replica_count = min(replica_count, fault_domains)
    config = replace(
        SMALL_CONFIG,
        durability_enabled=True,
        fault_domains=fault_domains,
        durability_replicas=replica_count,
        durability_hot_refs=1,  # everything live replicates
        durability_cold_refs=1,
        erasure_data_shards=fault_domains,  # keep k + m <= domains * m
        erasure_parity_shards=2,
    )
    store = SlimStore(config)
    rng = np.random.default_rng(seed)
    for payload in make_version_chain(rng, versions=2):
        store.backup("f", payload)
    durability = store.storage.durability
    replicated = {
        cid for cid, k in durability.classes().items() if k == CLASS_REPLICATED
    }
    assert replicated
    for cid in replicated:
        record = durability.record_for(cid)
        domains = [copy["domain"] for copy in record["copies"]]
        assert len(domains) == replica_count - 1
        assert len(set(domains)) == len(domains)
        assert durability.policy.primary_domain(cid) not in domains


@given(seed=st.integers(0, 2**31))
@settings(max_examples=8)
def test_promote_demote_roundtrip_reaps_exactly_retired(seed):
    """Promoting then demoting a container reaps exactly the copies the
    demotion retired — nothing else leaves the store."""
    config = replace(
        SMALL_CONFIG,
        durability_enabled=True,
        fault_domains=3,
        durability_replicas=3,
        durability_hot_refs=3,
        durability_cold_refs=2,
        tombstone_grace_epochs=1,
    )
    store = SlimStore(config)
    rng = np.random.default_rng(seed)
    for payload in make_version_chain(rng, versions=4):
        store.backup("f", payload)
    durability = store.storage.durability
    containers = store.storage.containers
    bucket = containers._bucket
    replicated = {
        cid for cid, k in durability.classes().items() if k == CLASS_REPLICATED
    }
    assert replicated
    promoted_copies = {
        copy["key"]
        for cid in replicated
        for copy in durability.record_for(cid)["copies"]
    }
    # Demote: deleting all but the last version cools the shared containers.
    for version in store.versions("f")[:-1]:
        store.delete_version("f", version)
    durability.retier(store.catalog.refcounts())
    retired_copies = {
        entry["key"]
        for record in durability._records.values()
        for entry in record.get("retired", [])
    }
    # Demoting also retires parity of stripes rebuilt around the change.
    retired = retired_copies | {
        entry["key"]
        for stripe in durability._stripes.values()
        for entry in stripe.get("retired", [])
    }
    assert retired_copies
    assert retired_copies <= promoted_copies
    before = set(store.oss.peek_keys(bucket, "durability/"))
    containers.advance_epoch()
    containers.advance_epoch()
    _, deleted = durability.reap_retired()
    after = set(store.oss.peek_keys(bucket, "durability/"))
    # Exactly the retired payload keys disappeared; anything else gone is
    # an emptied bookkeeping manifest, never a copy or parity blob.
    assert deleted == len(retired)
    gone = before - after
    assert gone & retired == retired
    for key in gone - retired:
        assert key.startswith(("durability/records/", "durability/stripes/")), key
    assert not any(
        record.get("retired") for record in durability._records.values()
    )
