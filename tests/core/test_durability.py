"""Unit tests for the heat-aware replication/erasure durability tier."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import SlimStore
from repro.core.durability import (
    CLASS_DELETED,
    CLASS_ERASURE,
    CLASS_REPLICATED,
    CLASS_SINGLE,
    ReplicationPolicy,
)
from tests.conftest import SMALL_CONFIG, make_version_chain, random_bytes

#: Small geometry with the tier on: 3 domains, replicate at 3 refs,
#: erasure-code at 2, singletons stay single.
DURABLE_CONFIG = replace(
    SMALL_CONFIG,
    durability_enabled=True,
    fault_domains=3,
    durability_replicas=3,
    durability_hot_refs=3,
    durability_cold_refs=2,
    erasure_data_shards=4,
    erasure_parity_shards=2,
)


def durable_store(config=DURABLE_CONFIG) -> SlimStore:
    store = SlimStore(config)
    assert store.storage.durability is not None
    return store


class TestReplicationPolicy:
    def test_classify_thresholds(self):
        policy = ReplicationPolicy(hot_refs=3, cold_refs=2)
        assert policy.classify(0) == CLASS_SINGLE
        assert policy.classify(1) == CLASS_SINGLE
        assert policy.classify(2) == CLASS_ERASURE
        assert policy.classify(3) == CLASS_REPLICATED
        assert policy.classify(10) == CLASS_REPLICATED

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationPolicy(fault_domains=1)
        with pytest.raises(ValueError):
            ReplicationPolicy(cold_refs=4, hot_refs=3)
        with pytest.raises(ValueError):
            ReplicationPolicy(replica_count=4, fault_domains=3)
        with pytest.raises(ValueError):
            ReplicationPolicy(replica_count=1)
        with pytest.raises(ValueError):
            ReplicationPolicy(data_shards=0)
        with pytest.raises(ValueError):
            # k + m > domains * m: a single-domain outage could take out
            # more than m shards of one stripe.
            ReplicationPolicy(data_shards=7, parity_shards=2, fault_domains=3)

    def test_roundtrip_dict(self):
        policy = ReplicationPolicy(replica_count=2, hot_refs=5, cold_refs=2)
        assert ReplicationPolicy.from_dict(policy.to_dict()) == policy

    def test_primary_domain_layout(self):
        policy = ReplicationPolicy(fault_domains=3)
        assert [policy.primary_domain(cid) for cid in range(6)] == [0, 1, 2, 0, 1, 2]


class TestRetier:
    def test_backup_retier_assigns_classes(self, rng):
        store = durable_store()
        chain = make_version_chain(rng, versions=4)
        report = None
        for payload in chain:
            report = store.backup("f", payload)
        assert report.retier is not None
        durability = store.storage.durability
        classes = durability.classes()
        live = set(store.storage.containers.container_ids())
        # Every live container is tiered, and the shared base containers
        # (referenced by all four versions) are replicated.
        assert set(classes) == live
        refcounts = store.catalog.refcounts()
        policy = durability.policy
        for cid, klass in classes.items():
            assert klass == policy.classify(refcounts.get(cid, 0))

    def test_replicas_on_distinct_domains(self, rng):
        store = durable_store()
        chain = make_version_chain(rng, versions=4)
        for payload in chain:
            store.backup("f", payload)
        durability = store.storage.durability
        for cid, klass in durability.classes().items():
            if klass != CLASS_REPLICATED:
                continue
            record = durability.record_for(cid)
            domains = [copy["domain"] for copy in record["copies"]]
            primary = durability.policy.primary_domain(cid)
            assert primary not in domains
            assert len(set(domains)) == len(domains)
            assert len(domains) == durability.policy.replica_count - 1

    def test_stripe_never_overloads_a_domain(self, rng):
        store = durable_store()
        chain = make_version_chain(rng, versions=3)
        for payload in chain:
            store.backup("f", payload)
        durability = store.storage.durability
        policy = durability.policy
        for stripe in durability._stripes.values():
            if not stripe["members"]:
                continue
            counts = [0] * policy.fault_domains
            for member in stripe["members"]:
                counts[policy.primary_domain(int(member["cid"]))] += 1
            for parity in stripe["parity"]:
                counts[parity["domain"]] += 1
            assert max(counts) <= policy.parity_shards, stripe

    def test_demotion_retires_copies_and_reap_reclaims(self, rng):
        config = replace(DURABLE_CONFIG, tombstone_grace_epochs=1)
        store = durable_store(config)
        chain = make_version_chain(rng, versions=5)
        for payload in chain:
            store.backup("f", payload)
        durability = store.storage.durability
        replicated = [
            cid for cid, k in durability.classes().items() if k == CLASS_REPLICATED
        ]
        assert replicated
        # Deleting old versions cools the shared containers back down.
        for version in store.versions("f")[:-1]:
            store.delete_version("f", version)
        report = store.gnode.retier(store.catalog.refcounts())
        demoted = [t for t in report.transitions if t[1] == CLASS_REPLICATED]
        assert demoted
        # The superseded copies sit in the grace window, then reap.
        retired = [
            entry["key"]
            for record in durability._records.values()
            for entry in record.get("retired", [])
        ]
        assert retired
        store.gnode.deep_clean()  # reaps what expired, then advances epoch
        # After enough epochs everything retired is physically gone.
        for _ in range(3):
            store.storage.containers.advance_epoch()
            durability.reap_retired()
        assert not any(
            record.get("retired") for record in durability._records.values()
        )

    def test_audit_clean_after_retier(self, rng):
        store = durable_store()
        for payload in make_version_chain(rng, versions=4):
            store.backup("f", payload)
        audit = store.storage.durability.audit(store.catalog.refcounts())
        assert audit.consistent
        assert not audit.class_mismatches
        assert not audit.untiered


class TestFailover:
    def _aged(self, rng):
        store = durable_store()
        chain = make_version_chain(rng, versions=4)
        for payload in chain:
            store.backup("f", payload)
        return store, chain

    def test_verified_payload_from_replica(self, rng):
        store, _ = self._aged(rng)
        durability = store.storage.durability
        containers = store.storage.containers
        replicated = [
            cid for cid, k in durability.classes().items() if k == CLASS_REPLICATED
        ]
        assert replicated
        cid = replicated[0]
        original = containers.read_data(cid)
        # Delete the primary: the read path must fail over to a replica.
        store.oss.delete_object(containers._bucket, f"containers/{cid:012d}.data")
        assert containers.primary_missing(cid)
        before = durability.replica_failovers
        assert containers.read_data(cid) == original
        assert durability.replica_failovers > before

    def test_verified_payload_from_erasure_decode(self, rng):
        store, _ = self._aged(rng)
        durability = store.storage.durability
        containers = store.storage.containers
        erasure = [
            cid for cid, k in durability.classes().items() if k == CLASS_ERASURE
        ]
        assert erasure
        cid = erasure[0]
        original = containers.read_data(cid)
        store.oss.delete_object(containers._bucket, f"containers/{cid:012d}.data")
        before = durability.erasure_decodes
        assert containers.read_data(cid) == original
        assert durability.erasure_decodes > before

    def test_restore_survives_lost_primary(self, rng):
        store, chain = self._aged(rng)
        durability = store.storage.durability
        containers = store.storage.containers
        tiered = [
            cid for cid, k in durability.classes().items() if k != CLASS_SINGLE
        ]
        assert tiered
        for cid in tiered:
            store.oss.delete_object(containers._bucket, f"containers/{cid:012d}.data")
        for version, payload in enumerate(chain):
            assert store.restore("f", version).data == payload

    def test_read_spans_fail_over(self, rng):
        store, _ = self._aged(rng)
        durability = store.storage.durability
        containers = store.storage.containers
        tiered = [
            cid for cid, k in durability.classes().items() if k != CLASS_SINGLE
        ]
        cid = tiered[0]
        whole = containers.read_data(cid)
        store.oss.delete_object(containers._bucket, f"containers/{cid:012d}.data")
        spans = [(0, 100), (len(whole) - 50, 50)]
        fetched = containers.read_spans(cid, spans)
        assert [data for _, data in fetched] == [whole[0:100], whole[-50:]]

    def test_singleton_loss_still_fails(self, rng):
        """A single-class container has no extra copies: losing its
        primary is real data loss, and the read path must say so."""
        from repro.errors import ObjectNotFoundError

        store = durable_store()
        store.backup("f", random_bytes(rng, 64 * 1024))
        durability = store.storage.durability
        containers = store.storage.containers
        singles = [
            cid for cid, k in durability.classes().items() if k == CLASS_SINGLE
        ]
        assert singles
        cid = singles[0]
        store.oss.delete_object(containers._bucket, f"containers/{cid:012d}.data")
        with pytest.raises(ObjectNotFoundError):
            containers.read_data(cid)


class TestDeletionHooks:
    def test_purged_container_drops_durability_state(self, rng):
        store = durable_store()
        for payload in make_version_chain(rng, versions=4):
            store.backup("f", payload)
        durability = store.storage.durability
        containers = store.storage.containers
        tiered = sorted(durability.classes())
        cid = tiered[0]
        containers.purge(cid)
        assert durability.record_for(cid) is None
        bucket = containers._bucket
        leftover = [
            key
            for key in store.oss.peek_keys(bucket, "durability/")
            if f"{cid:012d}.copy" in key
        ]
        assert not leftover

    def test_entombed_container_becomes_deleted_class(self, rng):
        config = replace(DURABLE_CONFIG, tombstone_grace_epochs=2)
        store = durable_store(config)
        for payload in make_version_chain(rng, versions=4):
            store.backup("f", payload)
        durability = store.storage.durability
        containers = store.storage.containers
        replicated = [
            cid for cid, k in durability.classes().items() if k == CLASS_REPLICATED
        ]
        assert replicated
        cid = replicated[0]
        containers.delete(cid)  # two-phase: entombs under grace
        record = durability.record_for(cid)
        assert record["class"] == CLASS_DELETED
        assert not record["copies"]
        assert record["retired"]
