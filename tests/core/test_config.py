"""Tests for SlimStoreConfig validation and derived views."""

import pytest

from repro.core.config import SlimStoreConfig


class TestValidation:
    def test_defaults_valid(self):
        config = SlimStoreConfig()
        assert config.chunk_avg_size == 4096

    def test_rejects_non_power_of_two_chunk(self):
        with pytest.raises(ValueError):
            SlimStoreConfig(chunk_avg_size=5000)

    def test_rejects_tiny_segment(self):
        with pytest.raises(ValueError):
            SlimStoreConfig(segment_bytes=1024, chunk_avg_size=4096)

    def test_rejects_tiny_container(self):
        with pytest.raises(ValueError):
            SlimStoreConfig(container_bytes=1024, chunk_avg_size=4096)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            SlimStoreConfig(sparse_utilization_threshold=0.0)
        with pytest.raises(ValueError):
            SlimStoreConfig(container_rewrite_threshold=1.0)

    def test_rejects_zero_lnodes(self):
        with pytest.raises(ValueError):
            SlimStoreConfig(lnode_count=0)

    def test_rejects_negative_prefetch(self):
        with pytest.raises(ValueError):
            SlimStoreConfig(prefetch_threads=-1)


class TestDerivedViews:
    def test_chunker_params_shape(self):
        params = SlimStoreConfig(chunk_avg_size=8192).chunker_params()
        assert params.avg_size == 8192
        assert params.min_size == 2048
        assert params.max_size == 8192 * 8

    def test_merge_policy_mirrors_config(self):
        config = SlimStoreConfig(chunk_merging=False, merge_threshold=7)
        policy = config.merge_policy()
        assert policy.enabled is False
        assert policy.threshold == 7

    def test_effective_sample_ratio_shrinks_with_chunk_size(self):
        small_chunks = SlimStoreConfig(chunk_avg_size=4096)
        big_chunks = SlimStoreConfig(chunk_avg_size=65536, segment_bytes=128 * 1024)
        assert big_chunks.effective_sample_ratio() < small_chunks.effective_sample_ratio()
        assert big_chunks.effective_sample_ratio() >= 1

    def test_with_overrides(self):
        config = SlimStoreConfig()
        updated = config.with_overrides(skip_chunking=False)
        assert updated.skip_chunking is False
        assert config.skip_chunking is True  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SlimStoreConfig().chunker = "rabin"
