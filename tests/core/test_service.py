"""Control-plane behaviour: admission, fairness, breaker, leases, scaling."""

import pytest

from repro import SlimStoreConfig
from repro.core.service import (
    CircuitBreaker,
    FairShareScheduler,
    JobRequest,
    ServiceControlPlane,
    ServicePolicy,
)
from repro.core.tenancy import BackupService
from repro.oss.faults import FaultPolicy
from tests.conftest import random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


def make_plane(policy: ServicePolicy, **kwargs) -> ServiceControlPlane:
    return ServiceControlPlane(BackupService(config=CONFIG), policy, **kwargs)


def backup_job(tenant: str, rng, path: str = "f", size: int = 32 * 1024) -> JobRequest:
    return JobRequest(tenant=tenant, kind="backup", path=path, data=random_bytes(rng, size))


class TestPolicyValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ServicePolicy(tenant_queue_limit=0)
        with pytest.raises(ValueError):
            ServicePolicy(min_nodes=3, max_nodes=2)
        with pytest.raises(ValueError):
            ServicePolicy(lease_seconds=0.0)
        with pytest.raises(ValueError):
            ServicePolicy(autoscale_low_depth=3.0, autoscale_high_depth=1.0)

    def test_unknown_job_kind_rejected(self):
        with pytest.raises(ValueError):
            JobRequest(tenant="alice", kind="compact")


class TestAdmissionControl:
    def test_tenant_queue_bound_rejects_with_retry_after(self, rng):
        policy = ServicePolicy(tenant_queue_limit=2, global_queue_limit=100,
                               min_nodes=1, max_nodes=1, slots_per_node=1,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(6):
            plane.submit_at(0.0, backup_job("alice", rng, path=f"f{i}"))
        report = plane.run()
        # 1 dispatched immediately + 2 queued = 3 admitted; 3 shed.
        assert report.admitted == 3
        assert len(report.rejections) == 3
        for rejection in report.rejections:
            assert rejection.reason == "tenant-queue-full"
            assert rejection.retry_after > 0
        assert report.completed == 3  # every admitted job finished

    def test_global_queue_bound(self, rng):
        policy = ServicePolicy(tenant_queue_limit=100, global_queue_limit=3,
                               min_nodes=1, max_nodes=1, slots_per_node=1,
                               autoscale_high_depth=1e9,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(8):
            tenant = "alice" if i % 2 == 0 else "bob"
            plane.submit_at(0.0, backup_job(tenant, rng, path=f"f{i}"))
        report = plane.run()
        assert report.admitted == 4  # 1 running + 3 queued
        assert {r.reason for r in report.rejections} == {"global-queue-full"}
        assert all(r.retry_after > 0 for r in report.rejections)

    def test_no_silent_drops(self, rng):
        """Every submission is either admitted or carries a rejection."""
        policy = ServicePolicy(tenant_queue_limit=1, global_queue_limit=2,
                               min_nodes=1, max_nodes=1, slots_per_node=1,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(10):
            plane.submit_at(float(i) * 1e-6, backup_job("alice", rng, path=f"f{i}"))
        report = plane.run()
        assert report.submitted == 10
        assert report.admitted + len(report.rejections) == 10


class TestFairShare:
    def test_equal_weights_alternate(self):
        scheduler = FairShareScheduler()
        for i in range(3):
            scheduler.enqueue(JobRequest(tenant="alice", kind="backup", cost=10.0), 1.0)
            scheduler.enqueue(JobRequest(tenant="bob", kind="backup", cost=10.0), 1.0)
        order = [scheduler.pick().tenant for _ in range(6)]
        assert order == ["alice", "bob", "alice", "bob", "alice", "bob"]

    def test_weighted_tenant_gets_proportional_share(self):
        scheduler = FairShareScheduler()
        for _ in range(8):
            scheduler.enqueue(JobRequest(tenant="alice", kind="backup", cost=10.0), 1.0)
            scheduler.enqueue(JobRequest(tenant="bob", kind="backup", cost=10.0), 2.0)
        first_six = [scheduler.pick().tenant for _ in range(6)]
        assert first_six.count("bob") == 4  # 2:1 share for double weight

    def test_large_jobs_cost_more_virtual_time(self):
        scheduler = FairShareScheduler()
        scheduler.enqueue(JobRequest(tenant="alice", kind="backup", cost=100.0), 1.0)
        for _ in range(3):
            scheduler.enqueue(JobRequest(tenant="bob", kind="backup", cost=10.0), 1.0)
        order = [scheduler.pick().tenant for _ in range(4)]
        # bob's three small jobs all finish (in virtual time) before
        # alice's one large job.
        assert order == ["bob", "bob", "bob", "alice"]

    def test_service_dispatch_respects_weights(self, rng):
        policy = ServicePolicy(tenant_queue_limit=20, global_queue_limit=100,
                               min_nodes=1, max_nodes=1, slots_per_node=1,
                               autoscale_high_depth=1e9,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        plane.service.set_weight("bob", 2.0)
        dispatched = []
        plane.decision_hook = lambda i, node, job: dispatched.append(job.tenant)
        for i in range(6):
            plane.submit_at(0.0, backup_job("alice", rng, path=f"a{i}"))
            plane.submit_at(0.0, backup_job("bob", rng, path=f"b{i}"))
        plane.run()
        assert dispatched[:6].count("bob") == 4


class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes(self):
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=10.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == "closed"
        breaker.record_failure(1.0)
        assert breaker.state == "open"
        assert not breaker.allows(5.0)
        assert breaker.retry_after(5.0) == pytest.approx(6.0)
        assert breaker.allows(11.0)  # half-open probe
        assert breaker.state == "half-open"
        breaker.record_success(12.0)
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=10.0)
        breaker.record_failure(0.0)
        assert breaker.allows(10.0)
        breaker.record_failure(11.0)
        assert breaker.state == "open"
        assert not breaker.allows(12.0)
        assert [s for _, s in breaker.transitions] == [
            "open", "half-open", "open"
        ]

    def test_open_breaker_sheds_submissions(self, rng):
        policy = ServicePolicy(breaker_failure_threshold=1,
                               breaker_cooldown_seconds=100.0,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        plane.breaker.record_failure(0.0)
        plane.submit_at(0.0, backup_job("alice", rng))
        report = plane.run()
        assert report.admitted == 0
        assert len(report.rejections) == 1
        assert report.rejections[0].reason == "circuit-open"
        assert report.rejections[0].retry_after == pytest.approx(100.0)


class TestAutoscaling:
    def test_deep_queue_scales_up(self, rng):
        policy = ServicePolicy(tenant_queue_limit=50, global_queue_limit=100,
                               min_nodes=1, max_nodes=3, slots_per_node=1,
                               autoscale_high_depth=1.0,
                               autoscale_cooldown_seconds=0.0,
                               scale_up_delay_seconds=0.001,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(10):
            plane.submit_at(0.0, backup_job("alice", rng, path=f"f{i}"))
        report = plane.run()
        ups = [e for e in report.scale_events if e[1] == "up"]
        assert ups
        assert report.completed == 10

    def test_scale_down_returns_to_min(self, rng):
        policy = ServicePolicy(tenant_queue_limit=50, global_queue_limit=100,
                               min_nodes=1, max_nodes=2, slots_per_node=1,
                               autoscale_high_depth=1.0,
                               autoscale_low_depth=0.5,
                               autoscale_cooldown_seconds=0.0,
                               scale_up_delay_seconds=0.001,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(8):
            plane.submit_at(0.0, backup_job("alice", rng, path=f"f{i}"))
        # A straggler long after the burst triggers the scale-down check.
        plane.submit_at(100.0, backup_job("alice", rng, path="late"))
        report = plane.run()
        downs = [e for e in report.scale_events if e[1] == "down"]
        assert downs
        assert len(plane.alive_nodes()) == 1

    def test_fleet_respects_max_nodes(self, rng):
        policy = ServicePolicy(tenant_queue_limit=100, global_queue_limit=200,
                               min_nodes=1, max_nodes=2, slots_per_node=1,
                               autoscale_high_depth=0.5,
                               autoscale_cooldown_seconds=0.0,
                               scale_up_delay_seconds=0.001,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(20):
            plane.submit_at(0.0, backup_job("alice", rng, path=f"f{i}"))
        report = plane.run()
        assert max(count for _, _, count in report.scale_events) <= 2


class TestLeaseRecovery:
    def test_predispatch_kill_requeues_job(self, rng):
        """A node killed at the decision point (before any write) loses
        nothing: the job goes back to the queue head and the autoscaler
        replaces the node."""
        policy = ServicePolicy(min_nodes=1, max_nodes=2, slots_per_node=1,
                               autoscale_high_depth=0.25,
                               autoscale_cooldown_seconds=0.0,
                               scale_up_delay_seconds=0.5,
                               lease_seconds=2.0,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        killed = []

        def hook(index, node_id, job):
            if index == 0:
                plane.kill_node(node_id)
                killed.append(node_id)

        plane.decision_hook = hook
        data = random_bytes(rng, 48 * 1024)
        plane.submit_at(0.0, JobRequest(tenant="alice", kind="backup", path="f", data=data))
        report = plane.run()
        assert killed
        assert report.node_deaths
        assert report.completed == 1
        assert plane.service.restore("alice", "f").data == data

    def test_midwrite_crash_recovers_via_lease_takeover(self, rng):
        """A node dying mid-backup leaves an open intent; after the lease
        expires the takeover re-attaches (running recovery) and re-runs
        the job on a replacement node."""
        policy = ServicePolicy(min_nodes=1, max_nodes=2, slots_per_node=1,
                               autoscale_high_depth=0.25,
                               autoscale_cooldown_seconds=0.0,
                               scale_up_delay_seconds=0.1,
                               lease_seconds=2.0,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        faults = FaultPolicy()
        plane.service.oss.set_fault_policy(faults)

        def hook(index, node_id, job):
            if index == 0:
                faults.crash_after_writes(2)

        plane.decision_hook = hook
        data = random_bytes(rng, 48 * 1024)
        plane.submit_at(0.0, JobRequest(tenant="alice", kind="backup", path="f", data=data))
        report = plane.run()
        assert report.node_deaths
        assert [kind for _, _, kind in report.takeovers] == ["resumed"]
        assert report.completed == 1
        assert plane.service.restore("alice", "f").data == data
        assert plane.service.store_for("alice").versions("f") == [0]

    def test_commit_before_crash_not_duplicated(self, rng):
        """A node that crashed *after* the catalog commit must not re-run
        the job: the takeover sees the expected version committed and
        marks the job complete (exactly-once effect)."""
        policy = ServicePolicy(min_nodes=1, max_nodes=2, slots_per_node=1,
                               autoscale_high_depth=0.25,
                               autoscale_cooldown_seconds=0.0,
                               scale_up_delay_seconds=0.1,
                               lease_seconds=2.0,
                               maintenance_idle_seconds=1e9)
        # Probe: count writes of an identical standalone backup.
        probe = make_plane(ServicePolicy(maintenance_idle_seconds=1e9))
        data = random_bytes(rng, 48 * 1024)
        probe.submit_at(0.0, JobRequest(tenant="alice", kind="backup", path="f", data=data))
        probe_faults = FaultPolicy()
        probe.service.oss.set_fault_policy(probe_faults)
        probe.run()
        writes = probe_faults.writes_seen
        assert writes > 2

        plane = make_plane(policy)
        faults = FaultPolicy()
        plane.service.oss.set_fault_policy(faults)

        def hook(index, node_id, job):
            if index == 0:
                faults.crash_after_writes(writes - 1)  # die on the last write

        plane.decision_hook = hook
        plane.submit_at(0.0, JobRequest(tenant="alice", kind="backup", path="f", data=data))
        report = plane.run()
        assert report.completed == 1
        assert plane.service.store_for("alice").versions("f") == [0]
        assert plane.service.restore("alice", "f").data == data


class TestMaintenanceWindows:
    def test_maintenance_runs_when_idle(self, rng):
        policy = ServicePolicy(min_nodes=1, max_nodes=1, slots_per_node=1,
                               maintenance_idle_seconds=1.0)
        plane = make_plane(policy)
        data = random_bytes(rng, 64 * 1024)
        plane.submit_at(0.0, JobRequest(tenant="alice", kind="backup", path="f", data=data))
        report = plane.run()
        assert report.maintenance_runs >= 1

    def test_maintenance_never_starves_ingest(self, rng):
        """With foreground jobs queued, no maintenance job is dispatched."""
        policy = ServicePolicy(tenant_queue_limit=50, global_queue_limit=100,
                               min_nodes=1, max_nodes=1, slots_per_node=1,
                               autoscale_high_depth=1e9,
                               maintenance_idle_seconds=0.001)
        plane = make_plane(policy)
        kinds = []
        plane.decision_hook = lambda i, n, job: kinds.append(job.kind)
        for i in range(10):
            plane.submit_at(float(i) * 1e-4, backup_job("alice", rng, path=f"f{i}"))
        plane.run()
        last_backup = max(i for i, kind in enumerate(kinds) if kind == "backup")
        assert all(kind == "backup" for kind in kinds[: last_backup + 1])


class TestSLOMetrics:
    def test_latency_includes_queueing(self, rng):
        policy = ServicePolicy(tenant_queue_limit=50, global_queue_limit=100,
                               min_nodes=1, max_nodes=1, slots_per_node=1,
                               autoscale_high_depth=1e9,
                               maintenance_idle_seconds=1e9)
        plane = make_plane(policy)
        for i in range(5):
            plane.submit_at(0.0, backup_job("alice", rng, path=f"f{i}"))
        report = plane.run()
        stats = report.backup_latency["alice"]
        assert stats.count == 5
        # Later jobs queued behind earlier ones: p99 well above p50.
        assert stats.p99 > stats.p50
        summary = report.slo_summary(policy)
        assert summary["alice"]["backup"]["count"] == 5
        assert 0.0 <= summary["alice"]["backup"]["attainment"] <= 1.0
