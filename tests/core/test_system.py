"""Tests for the SlimStore facade, version catalog and space accounting."""

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.core.system import VersionCatalog
from repro.errors import VersionNotFoundError
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=32 * 1024,
    merge_threshold=3,
)


@pytest.fixture
def store() -> SlimStore:
    return SlimStore(CONFIG)


class TestVersionCatalog:
    def test_register_and_versions(self):
        catalog = VersionCatalog()
        catalog.register("f", 0, {1, 2})
        catalog.register("f", 1, {2, 3})
        assert catalog.versions("f") == [0, 1]

    def test_drop_returns_unreferenced_containers(self):
        catalog = VersionCatalog()
        catalog.register("f", 0, {1, 2})
        catalog.register("f", 1, {2, 3})
        collectable = catalog.drop_version("f", 0)
        assert collectable == [1]  # container 2 still referenced by v1

    def test_mark_phase_diffs_predecessor(self):
        catalog = VersionCatalog()
        catalog.register("f", 0, {1, 2})
        catalog.register("f", 1, {2})
        # Container 1 was marked garbage for v0 during v1's registration.
        assert 1 in catalog.drop_version("f", 0)

    def test_shared_containers_protected_across_files(self):
        catalog = VersionCatalog()
        catalog.register("a", 0, {7})
        catalog.register("b", 0, {7})
        assert catalog.drop_version("a", 0) == []
        assert catalog.drop_version("b", 0) == [7]

    def test_add_garbage(self):
        catalog = VersionCatalog()
        catalog.register("f", 0, {1})
        catalog.add_garbage("f", 0, [9])
        collected = catalog.drop_version("f", 0)
        assert set(collected) == {1, 9}

    def test_drop_unknown_version_raises(self):
        with pytest.raises(VersionNotFoundError):
            VersionCatalog().drop_version("f", 0)


class TestSlimStoreFacade:
    def test_backup_restore_roundtrip(self, store, rng):
        data = random_bytes(rng, 256 * 1024)
        report = store.backup("db/t", data)
        assert report.version == 0
        assert report.path == "db/t"
        assert store.restore("db/t").data == data

    def test_restore_defaults_to_latest(self, store, rng):
        first = random_bytes(rng, 128 * 1024)
        second = mutate(rng, first, 2, 8192)
        store.backup("f", first)
        store.backup("f", second)
        assert store.restore("f").data == second
        assert store.restore("f", 0).data == first

    def test_versions_listing(self, store, rng):
        data = random_bytes(rng, 64 * 1024)
        for _ in range(3):
            store.backup("f", data)
        assert store.versions("f") == [0, 1, 2]

    def test_restore_unknown_path_raises(self, store):
        with pytest.raises(VersionNotFoundError):
            store.restore("ghost")

    def test_gnode_runs_by_default(self, store, rng):
        data = random_bytes(rng, 128 * 1024)
        report = store.backup("f", data)
        assert report.reverse_dedup is not None
        assert report.compaction is not None

    def test_gnode_can_be_skipped(self, rng):
        store = SlimStore(CONFIG)
        report = store.backup("f", random_bytes(rng, 64 * 1024), run_gnode=False)
        assert report.reverse_dedup is None
        assert report.compaction is None

    def test_gnode_disabled_by_config(self, rng):
        store = SlimStore(
            CONFIG.with_overrides(reverse_dedup=False, sparse_compaction=False)
        )
        report = store.backup("f", random_bytes(rng, 64 * 1024))
        assert report.reverse_dedup is None
        assert report.compaction is None

    def test_jobs_round_robin_over_lnodes(self, rng):
        store = SlimStore(CONFIG.with_overrides(lnode_count=3))
        for _ in range(6):
            store.backup("f", random_bytes(rng, 32 * 1024))
        assert [node.jobs_executed for node in store.lnodes] == [2, 2, 2]

    def test_report_metrics(self, store, rng):
        report = store.backup("f", random_bytes(rng, 128 * 1024))
        assert report.throughput_mb_s > 0
        assert report.dedup_ratio == pytest.approx(0.0, abs=0.3)


class TestVersionDeletion:
    def test_delete_oldest_reclaims_space(self, store, rng):
        data = random_bytes(rng, 256 * 1024)
        payloads = [data]
        store.backup("f", data)
        for _ in range(4):
            payloads.append(mutate(rng, payloads[-1], 3, 16 * 1024))
            store.backup("f", payloads[-1])
        before = store.space_report().container_bytes
        reclaimed = sum(store.delete_version("f", v) for v in range(3))
        after = store.space_report().container_bytes
        assert store.versions("f") == [3, 4]
        assert after <= before
        assert after + reclaimed == pytest.approx(before, rel=0.01)
        # Remaining versions still restore byte-exact.
        for version in (3, 4):
            assert store.restore("f", version).data == payloads[version]

    def test_delete_requires_fifo_order(self, store, rng):
        data = random_bytes(rng, 64 * 1024)
        store.backup("f", data)
        store.backup("f", data)
        with pytest.raises(VersionNotFoundError):
            store.delete_version("f", 1)  # newest first is refused
        store.delete_version("f", 0)

    def test_deleted_recipe_gone(self, store, rng):
        data = random_bytes(rng, 64 * 1024)
        store.backup("f", data)
        store.backup("f", data)
        store.delete_version("f", 0)
        with pytest.raises(VersionNotFoundError):
            store.restore("f", 0)


class TestSpaceReport:
    def test_components_accounted(self, store, rng):
        store.backup("f", random_bytes(rng, 256 * 1024))
        report = store.space_report()
        assert report.container_bytes > 0
        assert report.recipe_bytes > 0
        assert report.similar_index_bytes > 0
        assert report.total_bytes >= (
            report.container_bytes + report.recipe_bytes
        )

    def test_dedup_bounds_growth(self, store, rng):
        data = random_bytes(rng, 256 * 1024)
        store.backup("f", data)
        first = store.space_report().container_bytes
        for _ in range(3):
            store.backup("f", data)
        final = store.space_report().container_bytes
        # Three identical versions cost far less than 3x the first.
        assert final < first * 1.6
