"""Property tests of every workload generator (Hypothesis).

One shared parametrised suite: seeded determinism, seed divergence,
version-stream shape, byte budgets, plus per-generator knob properties
(mutation-rate knobs must actually move churn).  The generators run at
deliberately tiny scales — the properties are structural, not
statistical, so a few KB per version is plenty.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    GENERATOR_NAMES,
    MailLogConfig,
    MailLogGenerator,
    SDBConfig,
    SDBGenerator,
    SrcTreeConfig,
    SrcTreeGenerator,
    VMFleetConfig,
    VMFleetGenerator,
    make_generator,
)

#: Tiny per-generator shapes so each Hypothesis example stays cheap.
TINY = {
    "sdb": dict(table_count=1, initial_table_bytes=32 * 1024, version_count=3),
    "rdata": dict(file_count=6, version_count=3, max_file_bytes=16 * 1024),
    "vmfleet": dict(image_count=2, image_bytes=64 * 1024, version_count=3),
    "srctree": dict(file_count=12, version_count=3),
    "maillog": dict(mailbox_count=2, initial_records=8, version_count=3),
}

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def tiny(name: str, seed: int, **overrides):
    return make_generator(name, seed=seed, **{**TINY[name], **overrides})


def stream_bytes(generator) -> list[list[tuple[str, bytes]]]:
    return [
        [(f.path, f.data) for f in version.files]
        for version in generator.versions()
    ]


@pytest.mark.parametrize("name", GENERATOR_NAMES)
@settings(max_examples=10)
@given(seed=seeds)
def test_equal_seeds_are_byte_identical(name, seed):
    assert stream_bytes(tiny(name, seed)) == stream_bytes(tiny(name, seed))


@pytest.mark.parametrize("name", GENERATOR_NAMES)
@settings(max_examples=10)
@given(seed=seeds)
def test_different_seeds_diverge(name, seed):
    left = stream_bytes(tiny(name, seed))
    right = stream_bytes(tiny(name, seed + 1))
    assert left != right


@pytest.mark.parametrize("name", GENERATOR_NAMES)
@settings(max_examples=10)
@given(seed=seeds, count=st.integers(min_value=1, max_value=5))
def test_version_stream_shape(name, seed, count):
    generator = tiny(name, seed, version_count=count)
    versions = generator.versions()
    # Exactly version_count versions, numbered contiguously from 0.
    assert [v.version for v in versions] == list(range(count))
    # Every version holds at least one file with a non-empty path, and
    # the summary agrees with the stream it describes.
    assert all(v.files for v in versions)
    assert all(f.path for v in versions for f in v.files)
    summary = generator.summary()
    assert summary.version_count == count
    assert summary.total_bytes == sum(v.total_bytes for v in versions)
    assert 0.0 <= summary.average_duplication_ratio <= 1.0
    assert 0.0 <= summary.self_reference <= 1.0


@pytest.mark.parametrize("name", GENERATOR_NAMES)
@settings(max_examples=10)
@given(seed=seeds)
def test_innovation_is_bounded_by_logical_bytes(name, seed):
    generator = tiny(name, seed)
    versions = generator.versions()
    logical = sum(v.total_bytes for v in versions)
    assert 0 < generator.fresh_random_bytes
    # Innovation can exceed the logical bytes of any single version
    # (deletes and overwrites discard freshly drawn content before it is
    # snapshotted) but never the whole retained stream by much.
    assert generator.fresh_random_bytes <= 2 * logical


@settings(max_examples=8)
@given(seed=seeds)
def test_vmfleet_byte_budget(seed):
    config = VMFleetConfig(
        image_count=2, image_bytes=64 * 1024, version_count=3, seed=seed
    )
    for version in VMFleetGenerator(config).versions():
        assert len(version.files) == config.image_count
        # Images never grow or shrink: churn is strictly in-place.
        assert all(f.size == config.image_bytes for f in version.files)


@settings(max_examples=8)
@given(seed=seeds)
def test_srctree_byte_budget(seed):
    config = SrcTreeConfig(file_count=12, version_count=3, seed=seed)
    for version in SrcTreeGenerator(config).versions():
        assert all(
            config.min_file_bytes <= f.size <= config.max_file_bytes
            for f in version.files
        )


@settings(max_examples=8)
@given(seed=seeds)
def test_maillog_cap_is_honored(seed):
    cap = 24 * 1024
    config = MailLogConfig(
        mailbox_count=2,
        initial_records=8,
        version_count=4,
        max_mailbox_bytes=cap,
        seed=seed,
    )
    for version in MailLogGenerator(config).versions():
        assert all(f.size <= cap for f in version.files)


@settings(max_examples=6)
@given(seed=seeds)
def test_sdb_update_knob_moves_churn(seed):
    """A wider update band must lower cross-version duplication."""

    def observed(target):
        # 256 KB tables: small enough to stay fast, large enough that
        # the minimum operation sizes don't swamp the target ratio.
        config = SDBConfig(
            table_count=1,
            initial_table_bytes=256 * 1024,
            version_count=4,
            duplication_ratio_min=target,
            duplication_ratio_max=target,
            seed=seed,
        )
        generator = SDBGenerator(config)
        generator.versions()
        return generator.summary().cross_version_duplication

    assert observed(0.65) < observed(0.95)


@settings(max_examples=6)
@given(seed=seeds)
def test_vmfleet_churn_knob_moves_innovation(seed):
    """More churn with an empty pool means strictly more fresh blocks.

    ``pool_fraction=0`` makes every churned block an innovation, and the
    image-creation draws are identical for both configs (same seed, the
    churn knob is consulted only after creation), so the comparison is
    exact, not statistical.
    """

    def innovation(churn):
        config = VMFleetConfig(
            image_count=2,
            image_bytes=64 * 1024,
            version_count=4,
            churn_fraction=churn,
            pool_fraction=0.0,
            seed=seed,
        )
        generator = VMFleetGenerator(config)
        generator.versions()
        return generator.fresh_random_bytes

    assert innovation(0.02) < innovation(0.40)


@settings(max_examples=6)
@given(seed=seeds)
def test_srctree_edit_knob_moves_innovation(seed):
    def innovation(edit_fraction):
        config = SrcTreeConfig(
            file_count=12,
            version_count=4,
            edit_fraction=edit_fraction,
            seed=seed,
        )
        generator = SrcTreeGenerator(config)
        generator.versions()
        return generator.fresh_random_bytes

    assert innovation(0.05) < innovation(0.60)


@settings(max_examples=6)
@given(seed=seeds)
def test_maillog_append_knob_moves_growth(seed):
    def final_bytes(appends):
        config = MailLogConfig(
            mailbox_count=2,
            initial_records=8,
            version_count=4,
            appends_per_version=appends,
            compaction_probability=0.0,
            seed=seed,
        )
        return MailLogGenerator(config).versions()[-1].total_bytes

    assert final_bytes(2) < final_bytes(16)
