"""Trace format round-trip and validation tests.

The contract under test: recording a generator run to a trace and
replaying it into a fresh repository is indistinguishable — bucket for
bucket, byte for byte — from backing the generator's stream up
directly.  Plus the reader's whole refusal matrix: a malformed or
corrupted trace must raise :class:`~repro.errors.TraceError`, never
silently replay garbage.
"""

from __future__ import annotations

import json

import pytest

from repro.core.system import SlimStore
from repro.errors import TraceError
from repro.workloads import (
    GENERATOR_NAMES,
    make_generator,
    read_trace,
    replay_into,
    write_trace,
)
from tests.conftest import SMALL_CONFIG, bucket_state


def small_stream(name: str = "srctree", seed: int = 31):
    generator = make_generator(name, seed=seed, version_count=3)
    return generator, generator.versions()


class TestRoundTrip:
    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_read_reproduces_the_stream(self, tmp_path, name):
        _, versions = small_stream(name)
        target = tmp_path / "t.jsonl"
        assert write_trace(target, versions, name=name) == len(versions)
        trace = read_trace(target)
        assert trace.name == name
        assert len(trace.versions) == len(versions)
        for original, parsed in zip(versions, trace.versions):
            assert parsed.version == original.version
            assert [(f.path, f.data) for f in parsed.files] == [
                (f.path, f.data) for f in original.files
            ]

    def test_meta_is_preserved_verbatim(self, tmp_path):
        _, versions = small_stream()
        target = tmp_path / "t.jsonl"
        meta = {"generator": "srctree", "seed": 31, "nested": {"a": [1, 2]}}
        write_trace(target, versions, name="x", meta=meta)
        assert read_trace(target).meta == meta

    def test_replay_is_byte_identical_to_direct_backup(self, tmp_path):
        """The headline invariant: replayed repo == directly-built repo."""
        _, versions = small_stream()
        target = tmp_path / "t.jsonl"
        write_trace(target, versions, name="srctree")

        direct = SlimStore(SMALL_CONFIG)
        for version in versions:
            for item in sorted(version.files, key=lambda f: f.path):
                direct.backup(item.path, item.data)

        replayed = SlimStore(SMALL_CONFIG)
        assigned = replay_into(replayed, read_trace(target))

        assert bucket_state(replayed.oss) == bucket_state(direct.oss)
        assert len(assigned) == sum(len(v.files) for v in versions)

    def test_record_twice_is_byte_identical(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for target in (first, second):
            _, versions = small_stream()
            write_trace(target, versions, name="srctree")
        assert first.read_bytes() == second.read_bytes()

    def test_replay_assignments_follow_file_appearance(self, tmp_path):
        """A path joining the dataset late starts at store version 0."""
        _, versions = small_stream("srctree")
        late = {f.path for f in versions[-1].files} - {
            f.path for f in versions[0].files
        }
        target = tmp_path / "t.jsonl"
        write_trace(target, versions, name="srctree")
        store = SlimStore(SMALL_CONFIG)
        assigned = replay_into(store, read_trace(target))
        if late:
            path = sorted(late)[0]
            first_seen = min(v for p, v in assigned if p == path)
            assert assigned[(path, first_seen)] == 0

    def test_checksums_cover_every_file(self, tmp_path):
        _, versions = small_stream()
        target = tmp_path / "t.jsonl"
        write_trace(target, versions)
        sums = read_trace(target).checksums()
        assert len(sums) == sum(len(v.files) for v in versions)


class TestValidation:
    def write_small(self, tmp_path):
        _, versions = small_stream("maillog", seed=5)
        target = tmp_path / "t.jsonl"
        write_trace(target, versions, name="maillog")
        return target

    def corrupt(self, target, match, replace):
        lines = target.read_text().splitlines()
        for index, line in enumerate(lines):
            if match in line:
                lines[index] = replace(line)
                break
        target.write_text("\n".join(lines) + "\n")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            read_trace(tmp_path / "absent.jsonl")

    def test_empty_file(self, tmp_path):
        target = tmp_path / "t.jsonl"
        target.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(target)

    def test_wrong_schema(self, tmp_path):
        target = self.write_small(tmp_path)
        self.corrupt(
            target, '"record": "header"',
            lambda line: line.replace("slimstore-trace/1", "slimstore-trace/9"),
        )
        with pytest.raises(TraceError, match="schema"):
            read_trace(target)

    def test_not_json(self, tmp_path):
        target = self.write_small(tmp_path)
        self.corrupt(target, '"record": "file"', lambda line: line[:-10])
        with pytest.raises(TraceError, match="not JSON"):
            read_trace(target)

    def test_checksum_mismatch(self, tmp_path):
        target = self.write_small(tmp_path)

        def flip(line):
            where = line.index('"data": "') + len('"data": "')
            other = "B" if line[where] != "B" else "C"
            return line[:where] + other + line[where + 1:]

        self.corrupt(target, '"record": "file"', flip)
        with pytest.raises(TraceError, match="checksum"):
            read_trace(target)

    def test_truncated_trace(self, tmp_path):
        target = self.write_small(tmp_path)
        lines = target.read_text().splitlines()
        target.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError, match="truncated"):
            read_trace(target)

    def test_records_after_end(self, tmp_path):
        target = self.write_small(tmp_path)
        with target.open("a") as sink:
            sink.write(json.dumps({"record": "version", "version": 99}) + "\n")
        with pytest.raises(TraceError, match="after end"):
            read_trace(target)

    def test_out_of_order_versions(self, tmp_path):
        target = self.write_small(tmp_path)
        self.corrupt(
            target, '"record": "version", "total_bytes"',
            lambda line: line.replace('"version": 0', '"version": 7'),
        )
        with pytest.raises(TraceError, match="out of order"):
            read_trace(target)

    def test_file_outside_version(self, tmp_path):
        _, versions = small_stream("maillog", seed=5)
        target = tmp_path / "t.jsonl"
        write_trace(target, versions, name="maillog")
        lines = target.read_text().splitlines()
        file_line = next(line for line in lines if '"record": "file"' in line)
        target.write_text("\n".join([lines[0], file_line] + lines[1:]) + "\n")
        with pytest.raises(TraceError, match="outside a version"):
            read_trace(target)

    def test_declared_file_count_enforced(self, tmp_path):
        target = self.write_small(tmp_path)
        lines = target.read_text().splitlines()
        drop = next(
            index for index, line in enumerate(lines) if '"record": "file"' in line
        )
        del lines[drop]
        target.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="declares"):
            read_trace(target)

    def test_end_count_enforced(self, tmp_path):
        target = self.write_small(tmp_path)
        self.corrupt(
            target, '"record": "end"',
            lambda line: line.replace('"versions": 3', '"versions": 8'),
        )
        with pytest.raises(TraceError, match="end marker"):
            read_trace(target)

    def test_unknown_record_kind(self, tmp_path):
        target = self.write_small(tmp_path)
        lines = target.read_text().splitlines()
        lines.insert(1, json.dumps({"record": "banana"}))
        target.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="unknown record"):
            read_trace(target)
