"""Tests for the S-DB and R-Data workload generators."""

import pytest

from repro.workloads import (
    BackupFile,
    DatasetVersion,
    RDataConfig,
    RDataGenerator,
    SDBConfig,
    SDBGenerator,
)

SDB_SMALL = SDBConfig(
    table_count=2, initial_table_bytes=256 * 1024, version_count=5, seed=42
)
RDATA_SMALL = RDataConfig(
    file_count=16, version_count=5, max_file_bytes=128 * 1024, seed=42
)


class TestDatasetStructures:
    def test_backup_file_size(self):
        assert BackupFile("p", b"1234").size == 4

    def test_version_total_bytes(self):
        version = DatasetVersion(0, [BackupFile("a", b"12"), BackupFile("b", b"345")])
        assert version.total_bytes == 5


class TestSDBGenerator:
    def test_deterministic_given_seed(self):
        first = SDBGenerator(SDB_SMALL).versions()
        second = SDBGenerator(SDB_SMALL).versions()
        for left, right in zip(first, second):
            assert [f.data for f in left.files] == [f.data for f in right.files]

    def test_version_count_and_paths(self):
        versions = SDBGenerator(SDB_SMALL).versions()
        assert len(versions) == 5
        assert all(len(v.files) == 2 for v in versions)
        paths = {f.path for v in versions for f in v.files}
        assert len(paths) == 2

    def test_duplication_ratio_targets_spread(self):
        generator = SDBGenerator(SDBConfig(table_count=4))
        ratios = [generator.table_duplication_ratio(i) for i in range(4)]
        assert ratios[0] == pytest.approx(0.65)
        assert ratios[-1] == pytest.approx(0.95)
        assert ratios == sorted(ratios)

    def test_versions_actually_change(self):
        versions = SDBGenerator(SDB_SMALL).versions()
        assert versions[0].files[0].data != versions[1].files[0].data

    def test_observed_duplication_near_target(self):
        config = SDBConfig(
            table_count=1, initial_table_bytes=512 * 1024, version_count=6,
            duplication_ratio_min=0.9, duplication_ratio_max=0.9, seed=1,
        )
        generator = SDBGenerator(config)
        generator.versions()
        assert generator.summary().average_duplication_ratio == pytest.approx(0.9, abs=0.06)

    def test_summary_fields(self):
        generator = SDBGenerator(SDB_SMALL)
        generator.versions()
        summary = generator.summary()
        assert summary.name == "S-DB"
        assert summary.version_count == 5
        assert summary.file_count == 2
        assert summary.total_bytes > 0
        rows = dict(summary.rows())
        assert rows["Dataset name"] == "S-DB"

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SDBConfig(table_count=0)
        with pytest.raises(ValueError):
            SDBConfig(duplication_ratio_min=0.9, duplication_ratio_max=0.8)
        with pytest.raises(ValueError):
            SDBConfig(self_reference=1.5)


class TestRDataGenerator:
    def test_deterministic_given_seed(self):
        first = RDataGenerator(RDATA_SMALL).versions()
        second = RDataGenerator(RDATA_SMALL).versions()
        for left, right in zip(first, second):
            assert [f.data for f in left.files] == [f.data for f in right.files]

    def test_population_size(self):
        versions = RDataGenerator(RDATA_SMALL).versions()
        assert len(versions) == 5
        assert len(versions[0].files) == 16

    def test_file_sizes_bounded(self):
        versions = RDataGenerator(RDATA_SMALL).versions()
        for item in versions[0].files:
            assert RDATA_SMALL.min_file_bytes <= item.size <= RDATA_SMALL.max_file_bytes

    def test_most_files_unchanged_between_versions(self):
        versions = RDataGenerator(RDATA_SMALL).versions()
        before = {f.path: f.data for f in versions[1].files}
        after = {f.path: f.data for f in versions[2].files}
        shared = set(before) & set(after)
        unchanged = sum(1 for path in shared if before[path] == after[path])
        assert unchanged / len(shared) > 0.5

    def test_file_churn_creates_and_deletes(self):
        config = RDataConfig(
            file_count=32, version_count=6, churn_file_fraction=0.1,
            max_file_bytes=64 * 1024, seed=3,
        )
        versions = RDataGenerator(config).versions()
        first_paths = {f.path for f in versions[0].files}
        last_paths = {f.path for f in versions[-1].files}
        assert last_paths - first_paths  # creations
        assert first_paths - last_paths  # deletions

    def test_summary_matches_table1_shape(self):
        generator = RDataGenerator(RDATA_SMALL)
        generator.versions()
        summary = generator.summary()
        assert summary.name == "R-Data"
        assert summary.version_count == 5
        assert 0.8 <= summary.average_duplication_ratio <= 1.0
        assert summary.self_reference == pytest.approx(0.001)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RDataConfig(file_count=2)
        with pytest.raises(ValueError):
            RDataConfig(duplication_ratio=1.5)
        with pytest.raises(ValueError):
            RDataConfig(modified_file_fraction=0.0)
