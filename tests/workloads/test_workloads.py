"""Tests for the S-DB and R-Data workload generators."""

import pytest

from repro.workloads import (
    BackupFile,
    DatasetVersion,
    MailLogConfig,
    MailLogGenerator,
    RDataConfig,
    RDataGenerator,
    SDBConfig,
    SDBGenerator,
    SrcTreeConfig,
    SrcTreeGenerator,
    VMFleetConfig,
    VMFleetGenerator,
    measure_duplication,
)

SDB_SMALL = SDBConfig(
    table_count=2, initial_table_bytes=256 * 1024, version_count=5, seed=42
)
RDATA_SMALL = RDataConfig(
    file_count=16, version_count=5, max_file_bytes=128 * 1024, seed=42
)


class TestDatasetStructures:
    def test_backup_file_size(self):
        assert BackupFile("p", b"1234").size == 4

    def test_version_total_bytes(self):
        version = DatasetVersion(0, [BackupFile("a", b"12"), BackupFile("b", b"345")])
        assert version.total_bytes == 5


class TestSDBGenerator:
    def test_deterministic_given_seed(self):
        first = SDBGenerator(SDB_SMALL).versions()
        second = SDBGenerator(SDB_SMALL).versions()
        for left, right in zip(first, second):
            assert [f.data for f in left.files] == [f.data for f in right.files]

    def test_version_count_and_paths(self):
        versions = SDBGenerator(SDB_SMALL).versions()
        assert len(versions) == 5
        assert all(len(v.files) == 2 for v in versions)
        paths = {f.path for v in versions for f in v.files}
        assert len(paths) == 2

    def test_duplication_ratio_targets_spread(self):
        generator = SDBGenerator(SDBConfig(table_count=4))
        ratios = [generator.table_duplication_ratio(i) for i in range(4)]
        assert ratios[0] == pytest.approx(0.65)
        assert ratios[-1] == pytest.approx(0.95)
        assert ratios == sorted(ratios)

    def test_versions_actually_change(self):
        versions = SDBGenerator(SDB_SMALL).versions()
        assert versions[0].files[0].data != versions[1].files[0].data

    def test_observed_duplication_near_target(self):
        config = SDBConfig(
            table_count=1, initial_table_bytes=512 * 1024, version_count=6,
            duplication_ratio_min=0.9, duplication_ratio_max=0.9, seed=1,
        )
        generator = SDBGenerator(config)
        generator.versions()
        assert generator.summary().average_duplication_ratio == pytest.approx(0.9, abs=0.06)

    def test_summary_fields(self):
        generator = SDBGenerator(SDB_SMALL)
        generator.versions()
        summary = generator.summary()
        assert summary.name == "S-DB"
        assert summary.version_count == 5
        assert summary.file_count == 2
        assert summary.total_bytes > 0
        rows = dict(summary.rows())
        assert rows["Dataset name"] == "S-DB"

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SDBConfig(table_count=0)
        with pytest.raises(ValueError):
            SDBConfig(duplication_ratio_min=0.9, duplication_ratio_max=0.8)
        with pytest.raises(ValueError):
            SDBConfig(self_reference=1.5)


class TestRDataGenerator:
    def test_deterministic_given_seed(self):
        first = RDataGenerator(RDATA_SMALL).versions()
        second = RDataGenerator(RDATA_SMALL).versions()
        for left, right in zip(first, second):
            assert [f.data for f in left.files] == [f.data for f in right.files]

    def test_population_size(self):
        versions = RDataGenerator(RDATA_SMALL).versions()
        assert len(versions) == 5
        assert len(versions[0].files) == 16

    def test_file_sizes_bounded(self):
        versions = RDataGenerator(RDATA_SMALL).versions()
        for item in versions[0].files:
            assert RDATA_SMALL.min_file_bytes <= item.size <= RDATA_SMALL.max_file_bytes

    def test_most_files_unchanged_between_versions(self):
        versions = RDataGenerator(RDATA_SMALL).versions()
        before = {f.path: f.data for f in versions[1].files}
        after = {f.path: f.data for f in versions[2].files}
        shared = set(before) & set(after)
        unchanged = sum(1 for path in shared if before[path] == after[path])
        assert unchanged / len(shared) > 0.5

    def test_file_churn_creates_and_deletes(self):
        config = RDataConfig(
            file_count=32, version_count=6, churn_file_fraction=0.1,
            max_file_bytes=64 * 1024, seed=3,
        )
        versions = RDataGenerator(config).versions()
        first_paths = {f.path for f in versions[0].files}
        last_paths = {f.path for f in versions[-1].files}
        assert last_paths - first_paths  # creations
        assert first_paths - last_paths  # deletions

    def test_summary_matches_table1_shape(self):
        generator = RDataGenerator(RDATA_SMALL)
        generator.versions()
        summary = generator.summary()
        assert summary.name == "R-Data"
        assert summary.version_count == 5
        assert 0.8 <= summary.average_duplication_ratio <= 1.0
        assert summary.self_reference == pytest.approx(0.001)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RDataConfig(file_count=2)
        with pytest.raises(ValueError):
            RDataConfig(duplication_ratio=1.5)
        with pytest.raises(ValueError):
            RDataConfig(modified_file_fraction=0.0)


class TestMeasureDuplication:
    """The content auditor against a fully hand-computed dataset."""

    A, B, C, D = b"AAAA", b"BBBB", b"CCCC", b"DDDD"

    def test_hand_computed_breakdown(self):
        # v0: a = A|B|A          -> the second A is an intra duplicate.
        # v1: a = A|C, b = B|B|D -> A and the first B duplicate v0
        #    (cross), the second B duplicates the first (intra takes
        #    precedence within the version), C and D are new.
        v0 = DatasetVersion(0, [BackupFile("a", self.A + self.B + self.A)])
        v1 = DatasetVersion(
            1,
            [
                BackupFile("a", self.A + self.C),
                BackupFile("b", self.B + self.B + self.D),
            ],
        )
        breakdown = measure_duplication([v0, v1], block_bytes=4)
        assert breakdown.total_bytes == 32
        assert breakdown.successor_bytes == 20
        assert breakdown.intra_version_bytes == 8   # A in v0, B in v1
        assert breakdown.cross_version_bytes == 8   # A and B into v1
        assert breakdown.cross_version_ratio == pytest.approx(8 / 20)
        assert breakdown.intra_version_ratio == pytest.approx(8 / 32)

    def test_intra_precedence_over_cross(self):
        # A block that duplicates both the same version and the previous
        # one counts once, as intra — never double-counted as cross.
        v0 = DatasetVersion(0, [BackupFile("a", self.A)])
        v1 = DatasetVersion(1, [BackupFile("a", self.A + self.A)])
        breakdown = measure_duplication([v0, v1], block_bytes=4)
        assert breakdown.cross_version_bytes == 4   # the first A only
        assert breakdown.intra_version_bytes == 4   # the second A
        assert breakdown.cross_version_ratio == pytest.approx(0.5)

    def test_cross_compares_to_previous_version_only(self):
        # Content from v0 resurfacing in v2 (after vanishing in v1) is
        # innovation by the auditor's successor-pair definition.
        v0 = DatasetVersion(0, [BackupFile("a", self.A)])
        v1 = DatasetVersion(1, [BackupFile("a", self.B)])
        v2 = DatasetVersion(2, [BackupFile("a", self.A)])
        breakdown = measure_duplication([v0, v1, v2], block_bytes=4)
        assert breakdown.cross_version_bytes == 0

    def test_single_version_has_no_cross(self):
        v0 = DatasetVersion(0, [BackupFile("a", self.A + self.A)])
        breakdown = measure_duplication([v0], block_bytes=4)
        assert breakdown.successor_bytes == 0
        assert breakdown.cross_version_ratio == 0.0
        assert breakdown.intra_version_ratio == pytest.approx(0.5)

    def test_empty(self):
        breakdown = measure_duplication([], block_bytes=4)
        assert breakdown.total_bytes == 0
        assert breakdown.cross_version_ratio == 0.0
        assert breakdown.intra_version_ratio == 0.0


class TestSplitAccountingAudit:
    """The generators' split summary accounting vs the content auditor."""

    def test_sdb_cross_accounting_tracks_auditor(self):
        config = SDBConfig(
            table_count=1, initial_table_bytes=256 * 1024, version_count=5,
            seed=8,
        )
        generator = SDBGenerator(config)
        versions = generator.versions()
        summary = generator.summary()
        measured = measure_duplication(versions, block_bytes=512)
        # The accounting subtracts every fresh byte drawn even when
        # overlapping update runs overwrite each other, while the
        # auditor sees only what the snapshots retain: the accounting
        # is a lower-side estimate, never an overcount.
        assert summary.cross_version_duplication <= (
            measured.cross_version_ratio + 0.02
        )
        assert summary.cross_version_duplication == pytest.approx(
            measured.cross_version_ratio, abs=0.12
        )

    def test_vmfleet_accounting_is_exact(self):
        config = VMFleetConfig(
            image_count=2, image_bytes=128 * 1024, version_count=4, seed=8
        )
        generator = VMFleetGenerator(config)
        versions = generator.versions()
        summary = generator.summary()
        measured = measure_duplication(versions, config.block_bytes)
        # Block-aligned churn: the generator's observations *are* the
        # auditor's numbers, averaged per version pair.
        assert summary.cross_version_duplication == pytest.approx(
            measured.cross_version_ratio, abs=0.02
        )
        assert summary.intra_version_duplication == pytest.approx(
            measured.intra_version_ratio, abs=0.02
        )

    def test_summary_rows_carry_split_fields(self):
        generator = SDBGenerator(SDB_SMALL)
        generator.versions()
        rows = dict(generator.summary().rows())
        assert "Cross-version duplication" in rows
        assert "Intra-version duplication" in rows


class TestVMFleetGenerator:
    CONFIG = VMFleetConfig(
        image_count=2, image_bytes=128 * 1024, version_count=4, seed=19
    )

    def test_deterministic_given_seed(self):
        first = VMFleetGenerator(self.CONFIG).versions()
        second = VMFleetGenerator(self.CONFIG).versions()
        for left, right in zip(first, second):
            assert [f.data for f in left.files] == [f.data for f in right.files]

    def test_images_are_stable_fixed_size_paths(self):
        versions = VMFleetGenerator(self.CONFIG).versions()
        assert len(versions) == 4
        for version in versions:
            assert [f.path for f in version.files] == [
                "vmfleet/image_000.img", "vmfleet/image_001.img",
            ]
            assert all(f.size == self.CONFIG.image_bytes for f in version.files)

    def test_fleet_carries_intra_version_duplication(self):
        # Clones of one golden image plus zero blocks: images duplicate
        # each other heavily within every single version.
        versions = VMFleetGenerator(self.CONFIG).versions()
        measured = measure_duplication(versions, self.CONFIG.block_bytes)
        assert measured.intra_version_ratio > 0.3

    def test_pool_blocks_create_cross_image_duplicates(self):
        config = VMFleetConfig(
            image_count=3, image_bytes=128 * 1024, version_count=4,
            pool_fraction=1.0, pool_blocks=4, seed=19,
        )
        versions = VMFleetGenerator(config).versions()
        # Every churned block comes from a 4-block pool: the same pool
        # content must appear in more than one image by the last version.
        last = versions[-1]
        block = config.block_bytes
        homes: dict[bytes, set[str]] = {}
        for item in last.files:
            for start in range(0, len(item.data), block):
                homes.setdefault(item.data[start:start + block], set()).add(item.path)
        assert any(len(paths) > 1 for paths in homes.values())

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            VMFleetConfig(image_count=0)
        with pytest.raises(ValueError):
            VMFleetConfig(image_bytes=4096, block_bytes=4096)
        with pytest.raises(ValueError):
            VMFleetConfig(image_bytes=100_000)  # not block-aligned
        with pytest.raises(ValueError):
            VMFleetConfig(churn_fraction=1.5)


class TestSrcTreeGenerator:
    CONFIG = SrcTreeConfig(file_count=24, version_count=5, seed=19)

    def test_deterministic_given_seed(self):
        first = SrcTreeGenerator(self.CONFIG).versions()
        second = SrcTreeGenerator(self.CONFIG).versions()
        for left, right in zip(first, second):
            assert [(f.path, f.data) for f in left.files] == [
                (f.path, f.data) for f in right.files
            ]

    def test_many_small_files(self):
        versions = SrcTreeGenerator(self.CONFIG).versions()
        assert len(versions[0].files) == 24
        assert all(
            self.CONFIG.min_file_bytes <= f.size <= self.CONFIG.max_file_bytes
            for v in versions for f in v.files
        )

    def test_renames_preserve_content_under_new_paths(self):
        config = SrcTreeConfig(
            file_count=24, version_count=5, rename_fraction=0.5,
            edit_fraction=0.0, churn_fraction=0.0,
            branch_copy_probability=0.0, seed=19,
        )
        versions = SrcTreeGenerator(config).versions()
        before = {f.path: f.data for f in versions[0].files}
        after = {f.path: f.data for f in versions[1].files}
        renamed = set(before) - set(after)
        assert renamed  # the knob did something
        # Every renamed file's bytes survive under some new path.
        surviving = set(after.values())
        assert all(before[path] in surviving for path in renamed)

    def test_branch_copies_duplicate_directories(self):
        config = SrcTreeConfig(
            file_count=24, version_count=6, branch_copy_probability=1.0,
            seed=19,
        )
        versions = SrcTreeGenerator(config).versions()
        branch_files = [
            f.path
            for f in versions[-1].files
            if f.path.startswith("srctree/branches/")
        ]
        assert branch_files

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SrcTreeConfig(file_count=0)
        with pytest.raises(ValueError):
            SrcTreeConfig(edit_fraction=1.5)
        with pytest.raises(ValueError):
            SrcTreeConfig(min_file_bytes=0)


class TestMailLogGenerator:
    CONFIG = MailLogConfig(
        mailbox_count=2, initial_records=12, version_count=5, seed=19
    )

    def test_deterministic_given_seed(self):
        first = MailLogGenerator(self.CONFIG).versions()
        second = MailLogGenerator(self.CONFIG).versions()
        for left, right in zip(first, second):
            assert [f.data for f in left.files] == [f.data for f in right.files]

    def test_appends_grow_mailboxes_monotonically(self):
        config = MailLogConfig(
            mailbox_count=2, initial_records=12, version_count=5,
            compaction_probability=0.0, seed=19,
        )
        versions = MailLogGenerator(config).versions()
        for earlier, later in zip(versions, versions[1:]):
            for a, b in zip(earlier.files, later.files):
                assert b.size > a.size
                # Append-only: the earlier content is a strict prefix.
                assert b.data.startswith(a.data)

    def test_compaction_shrinks_and_is_counted(self):
        config = MailLogConfig(
            mailbox_count=2, initial_records=48, version_count=8,
            compaction_probability=1.0, seed=19,
        )
        generator = MailLogGenerator(config)
        versions = generator.versions()
        assert generator.compactions > 0
        shrank = any(
            b.size < a.size
            for earlier, later in zip(versions, versions[1:])
            for a, b in zip(earlier.files, later.files)
        )
        assert shrank

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MailLogConfig(mailbox_count=0)
        with pytest.raises(ValueError):
            MailLogConfig(compaction_probability=2.0)
        with pytest.raises(ValueError):
            MailLogConfig(record_bytes=0)
