"""Tests for the LSM store, including a model-based hypothesis test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.lsm import LSMStore
from repro.kvstore.memtable import TOMBSTONE
from repro.oss.object_store import ObjectStorageService


@pytest.fixture
def store(oss) -> LSMStore:
    return LSMStore(oss, "kv", memtable_bytes=512, compaction_threshold=4)


class TestBasicOperations:
    def test_put_get(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_missing_is_none(self, store):
        assert store.get(b"nope") is None

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None
        assert b"k" not in store

    def test_tombstone_value_rejected(self, store):
        with pytest.raises(ValueError):
            store.put(b"k", TOMBSTONE)

    def test_contains(self, store):
        store.put(b"k", b"v")
        assert b"k" in store
        assert b"other" not in store


class TestFlushAndRead:
    def test_flush_creates_sstable(self, store):
        store.put(b"k", b"v")
        store.flush()
        assert store.sstable_count == 1
        assert store.get(b"k") == b"v"

    def test_flush_empty_is_noop(self, store):
        assert store.flush() is None
        assert store.sstable_count == 0

    def test_automatic_flush_when_full(self, store):
        for i in range(100):
            store.put(f"key{i:04d}".encode(), b"v" * 20)
        assert store.sstable_count >= 1
        assert store.get(b"key0000") == b"v" * 20

    def test_newer_sstable_shadows_older(self, store):
        store.put(b"k", b"old")
        store.flush()
        store.put(b"k", b"new")
        store.flush()
        assert store.get(b"k") == b"new"

    def test_delete_shadows_old_sstable_value(self, store):
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.flush()
        assert store.get(b"k") is None


class TestCompaction:
    def test_compaction_merges_tables(self, store):
        for generation in range(5):
            for i in range(20):
                store.put(f"key{i:03d}".encode(), f"gen{generation}".encode())
            store.flush()
        assert store.sstable_count < 4
        assert store.get(b"key010") == b"gen4"

    def test_compaction_drops_tombstones(self, store):
        for i in range(20):
            store.put(f"key{i:03d}".encode(), b"v")
        store.flush()
        for i in range(20):
            store.delete(f"key{i:03d}".encode())
        store.flush()
        store.compact()
        assert store.sstable_count == 0 or all(
            value != TOMBSTONE for _, value in store.iter_items()
        )
        assert store.get(b"key005") is None

    def test_iter_items_merged_view(self, store):
        store.put(b"a", b"1")
        store.flush()
        store.put(b"b", b"2")
        store.put(b"a", b"updated")
        assert list(store.iter_items()) == [(b"a", b"updated"), (b"b", b"2")]


class TestRecovery:
    def test_recover_from_sstables_and_wal(self, oss):
        store = LSMStore(oss, "kv", memtable_bytes=256)
        for i in range(30):
            store.put(f"key{i:03d}".encode(), f"value{i}".encode())
        store.delete(b"key005")
        # Simulate a crash: a new store instance over the same bucket.
        recovered = LSMStore(oss, "kv", memtable_bytes=256)
        recovered.recover()
        assert recovered.get(b"key020") == b"value20"
        assert recovered.get(b"key005") is None

    def test_recover_preserves_table_numbering(self, oss):
        store = LSMStore(oss, "kv", memtable_bytes=128)
        for i in range(50):
            store.put(f"key{i:03d}".encode(), b"x" * 16)
        recovered = LSMStore(oss, "kv", memtable_bytes=128)
        recovered.recover()
        recovered.put(b"new", b"value")
        recovered.flush()
        assert recovered.get(b"new") == b"value"
        assert recovered.get(b"key049") == b"x" * 16

    def test_rejects_tiny_compaction_threshold(self, oss):
        with pytest.raises(ValueError):
            LSMStore(oss, "kv", compaction_threshold=1)


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=20),
            st.binary(min_size=1, max_size=8),
        ),
        max_size=60,
    )
)
@settings(max_examples=25, deadline=None)
def test_lsm_matches_dict_model(operations):
    """The LSM store behaves exactly like a dict under any op sequence."""
    store = LSMStore(ObjectStorageService(), "kv", memtable_bytes=128)
    model: dict[bytes, bytes] = {}
    for op, key_id, value in operations:
        key = f"key{key_id}".encode()
        if op == "put":
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    for key_id in range(21):
        key = f"key{key_id}".encode()
        assert store.get(key) == model.get(key)
    assert dict(store.iter_items()) == model
