"""Tests for the LSM memtable."""

import pytest

from repro.kvstore.memtable import TOMBSTONE, MemTable


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"k", b"v")
        assert table.get(b"k") == b"v"

    def test_get_missing_is_none(self):
        assert MemTable().get(b"k") is None

    def test_overwrite_updates_size(self):
        table = MemTable()
        table.put(b"k", b"long value here")
        table.put(b"k", b"v")
        assert table.byte_size == len(b"k") + len(b"v")

    def test_delete_writes_tombstone(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.delete(b"k")
        assert table.get(b"k") == TOMBSTONE

    def test_is_full(self):
        table = MemTable(capacity_bytes=10)
        assert not table.is_full()
        table.put(b"key", b"0123456789")
        assert table.is_full()

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            MemTable(capacity_bytes=0)

    def test_sorted_items(self):
        table = MemTable()
        table.put(b"b", b"2")
        table.put(b"a", b"1")
        table.put(b"c", b"3")
        assert [k for k, _ in table.sorted_items()] == [b"a", b"b", b"c"]

    def test_clear(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.clear()
        assert len(table) == 0
        assert table.byte_size == 0

    def test_len(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.put(b"b", b"2")
        table.put(b"a", b"3")
        assert len(table) == 2
