"""Tests for the write-ahead log."""

import pytest

from repro.errors import KVStoreError
from repro.kvstore.wal import (
    OP_DELETE,
    OP_PUT,
    WriteAheadLog,
    decode_records,
    encode_record,
)
from repro.oss.object_store import ObjectStorageService


@pytest.fixture
def wal(oss: ObjectStorageService) -> WriteAheadLog:
    return WriteAheadLog(oss, "walbucket", "teststore")


class TestRecordEncoding:
    def test_roundtrip(self):
        blob = encode_record(OP_PUT, b"key", b"value")
        blob += encode_record(OP_DELETE, b"gone", b"")
        records = list(decode_records(blob))
        assert records == [(OP_PUT, b"key", b"value"), (OP_DELETE, b"gone", b"")]

    def test_truncated_header_rejected(self):
        blob = encode_record(OP_PUT, b"k", b"v")
        with pytest.raises(KVStoreError):
            list(decode_records(blob[:3]))

    def test_truncated_body_rejected(self):
        blob = encode_record(OP_PUT, b"key", b"value")
        with pytest.raises(KVStoreError):
            list(decode_records(blob[:-2]))


class TestWriteAheadLog:
    def test_replay_active_segment(self, wal):
        wal.log_put(b"a", b"1")
        wal.log_delete(b"b")
        records = list(wal.replay())
        assert records == [(OP_PUT, b"a", b"1"), (OP_DELETE, b"b", b"")]

    def test_persist_and_replay(self, wal):
        wal.log_put(b"a", b"1")
        key = wal.persist_segment()
        assert key is not None
        wal.log_put(b"b", b"2")
        records = list(wal.replay())
        assert records == [(OP_PUT, b"a", b"1"), (OP_PUT, b"b", b"2")]

    def test_persist_empty_returns_none(self, wal):
        assert wal.persist_segment() is None

    def test_pending_bytes(self, wal):
        assert wal.pending_bytes == 0
        wal.log_put(b"a", b"1")
        assert wal.pending_bytes > 0
        wal.persist_segment()
        assert wal.pending_bytes == 0

    def test_discard_persisted(self, wal):
        wal.log_put(b"a", b"1")
        wal.persist_segment()
        wal.log_put(b"b", b"2")
        wal.persist_segment()
        assert wal.discard_persisted() == 2
        assert list(wal.replay()) == []

    def test_segment_ordering(self, wal):
        wal.log_put(b"first", b"1")
        wal.persist_segment()
        wal.log_put(b"second", b"2")
        wal.persist_segment()
        records = [key for _op, key, _value in wal.replay()]
        assert records == [b"first", b"second"]
