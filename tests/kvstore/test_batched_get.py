"""Batched multi-get on the LSM store: semantics and round-trip savings."""

from __future__ import annotations

import pytest

from repro.kvstore.lsm import LSMStore


@pytest.fixture
def store(oss) -> LSMStore:
    oss.create_bucket("kv")
    return LSMStore(oss, "kv", name="batched")


def _key(i: int) -> bytes:
    return f"key-{i:06d}".encode()


class TestLSMGetMany:
    def test_answers_match_serial_gets(self, store):
        for i in range(300):
            store.put(_key(i), f"value-{i}".encode())
        store.flush()
        for i in range(300, 330):  # newer records stay in the memtable
            store.put(_key(i), f"value-{i}".encode())

        wanted = [_key(i) for i in range(0, 340, 7)]
        batched = store.get_many(wanted)
        assert set(batched) == set(wanted)
        for key in wanted:
            assert batched[key] == store.get(key)

    def test_missing_and_deleted_keys_are_none(self, store):
        store.put(b"alive", b"1")
        store.put(b"doomed", b"2")
        store.flush()
        store.delete(b"doomed")
        store.flush()
        result = store.get_many([b"alive", b"doomed", b"absent"])
        assert result == {b"alive": b"1", b"doomed": None, b"absent": None}

    def test_newest_table_wins_across_flushes(self, store):
        store.put(b"k", b"old")
        store.flush()
        store.put(b"k", b"new")
        store.flush()
        assert store.get_many([b"k"]) == {b"k": b"new"}

    def test_duplicate_keys_resolve_once(self, store):
        store.put(b"k", b"v")
        store.flush()
        assert store.get_many([b"k", b"k", b"k"]) == {b"k": b"v"}

    def test_empty_batch(self, store):
        assert store.get_many([]) == {}

    def test_batched_reads_need_fewer_round_trips(self, store, oss):
        """Coalesced ranged GETs: the whole point of the batched API."""
        keys = [_key(i) for i in range(512)]
        for key in keys:
            store.put(key, key[::-1])
        store.flush()

        before = oss.stats.snapshot()
        for key in keys:
            store.get(key)
        serial_gets = oss.stats.diff(before).get_requests

        before = oss.stats.snapshot()
        batched = store.get_many(keys)
        batched_gets = oss.stats.diff(before).get_requests

        assert batched == {key: key[::-1] for key in keys}
        assert batched_gets < serial_gets / 8

    def test_put_many_equals_serial_puts(self, store):
        store.put_many([(_key(i), b"x" * i) for i in range(1, 50)])
        store.flush()
        for i in range(1, 50):
            assert store.get(_key(i)) == b"x" * i
