"""Tests for SSTables on OSS."""

import pytest

from repro.errors import KVStoreError
from repro.kvstore.sstable import SSTable


def make_items(count: int) -> list[tuple[bytes, bytes]]:
    return [(f"key{i:05d}".encode(), f"value{i}".encode()) for i in range(count)]


class TestSSTableWrite:
    def test_write_and_get(self, oss):
        table = SSTable.write(oss, "b", "t1.sst", make_items(100))
        assert table.get(b"key00042") == b"value42"
        assert table.entry_count == 100

    def test_get_missing_is_none(self, oss):
        table = SSTable.write(oss, "b", "t1.sst", make_items(100))
        assert table.get(b"key99999") is None
        assert table.get(b"aaa") is None
        assert table.get(b"zzz") is None

    def test_unsorted_input_rejected(self, oss):
        with pytest.raises(KVStoreError):
            SSTable.write(oss, "b", "t.sst", [(b"b", b"1"), (b"a", b"2")])

    def test_duplicate_keys_rejected(self, oss):
        with pytest.raises(KVStoreError):
            SSTable.write(oss, "b", "t.sst", [(b"a", b"1"), (b"a", b"2")])

    def test_empty_input_rejected(self, oss):
        with pytest.raises(KVStoreError):
            SSTable.write(oss, "b", "t.sst", [])


class TestSSTableOpen:
    def test_open_existing(self, oss):
        SSTable.write(oss, "b", "t.sst", make_items(50))
        reopened = SSTable.open(oss, "b", "t.sst")
        assert reopened.entry_count == 50
        assert reopened.get(b"key00010") == b"value10"
        assert reopened.get(b"missing") is None

    def test_open_missing_raises(self, oss):
        oss.create_bucket("b")
        with pytest.raises(KVStoreError):
            SSTable.open(oss, "b", "ghost.sst")

    def test_open_corrupt_magic_raises(self, oss):
        SSTable.write(oss, "b", "t.sst", make_items(5))
        payload = bytearray(oss.get_object("b", "t.sst"))
        payload[-8:] = b"BADMAGIC"
        oss.put_object("b", "t.sst", bytes(payload))
        with pytest.raises(KVStoreError):
            SSTable.open(oss, "b", "t.sst")


class TestSSTableAccess:
    def test_bloom_prefilter_avoids_reads(self, oss):
        table = SSTable.write(oss, "b", "t.sst", make_items(100))
        before = oss.stats.get_requests
        for i in range(100):
            table.may_contain(f"absent{i}".encode())
        assert oss.stats.get_requests == before

    def test_point_lookup_reads_one_block(self, oss):
        table = SSTable.write(oss, "b", "t.sst", make_items(1000))
        before = oss.stats.snapshot()
        table.get(b"key00500")
        delta = oss.stats.diff(before)
        assert delta.get_requests <= 1
        # A block is far smaller than the whole table.
        assert delta.bytes_read < oss.peek_size("b", "t.sst") / 10

    def test_iter_items_in_order(self, oss):
        items = make_items(64)
        table = SSTable.write(oss, "b", "t.sst", items)
        assert list(table.iter_items()) == items

    def test_min_key(self, oss):
        table = SSTable.write(oss, "b", "t.sst", make_items(10))
        assert table.min_key == b"key00000"

    def test_single_entry_table(self, oss):
        table = SSTable.write(oss, "b", "t.sst", [(b"only", b"one")])
        assert table.get(b"only") == b"one"
        assert table.get(b"other") is None
