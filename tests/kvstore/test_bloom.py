"""Tests for the Bloom filters, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.bloom import BloomFilter, CountingBloomFilter, optimal_parameters


class TestOptimalParameters:
    def test_more_items_need_more_bits(self):
        small, _ = optimal_parameters(100, 0.01)
        large, _ = optimal_parameters(10000, 0.01)
        assert large > small

    def test_lower_fp_rate_needs_more_bits(self):
        loose, _ = optimal_parameters(1000, 0.1)
        tight, _ = optimal_parameters(1000, 0.001)
        assert tight > loose

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.5)


class TestBloomFilter:
    def test_added_items_are_found(self):
        filt = BloomFilter(100)
        items = [f"item{i}".encode() for i in range(50)]
        filt.update(items)
        assert all(item in filt for item in items)

    def test_absent_items_mostly_rejected(self):
        filt = BloomFilter(1000, 0.01)
        filt.update(f"in{i}".encode() for i in range(1000))
        false_positives = sum(
            1 for i in range(1000) if f"out{i}".encode() in filt
        )
        assert false_positives < 50  # 1% target with generous slack

    def test_len_counts_insertions(self):
        filt = BloomFilter(10)
        filt.add(b"a")
        filt.add(b"b")
        assert len(filt) == 2

    def test_serialisation_roundtrip(self):
        filt = BloomFilter(100)
        filt.update(f"x{i}".encode() for i in range(40))
        restored = BloomFilter.from_bytes(filt.to_bytes())
        assert all(f"x{i}".encode() in restored for i in range(40))
        assert len(restored) == 40
        assert restored.bit_count == filt.bit_count

    def test_corrupt_payload_rejected(self):
        filt = BloomFilter(10)
        filt.add(b"a")
        payload = filt.to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(payload[:-1])

    @given(st.sets(st.binary(min_size=1, max_size=32), max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_no_false_negatives(self, items):
        filt = BloomFilter(max(1, len(items)))
        filt.update(items)
        assert all(item in filt for item in items)


class TestCountingBloomFilter:
    def test_count_tracks_references(self):
        cbf = CountingBloomFilter(100)
        cbf.add(b"chunk", times=3)
        assert cbf.count(b"chunk") >= 3
        cbf.remove(b"chunk")
        assert cbf.count(b"chunk") >= 2

    def test_remove_to_zero(self):
        cbf = CountingBloomFilter(100)
        cbf.add(b"chunk")
        cbf.remove(b"chunk")
        assert b"chunk" not in cbf

    def test_remove_absent_raises(self):
        cbf = CountingBloomFilter(100)
        with pytest.raises(KeyError):
            cbf.remove(b"never added")

    def test_add_rejects_non_positive_times(self):
        cbf = CountingBloomFilter(100)
        with pytest.raises(ValueError):
            cbf.add(b"x", times=0)

    def test_contains(self):
        cbf = CountingBloomFilter(100)
        assert b"x" not in cbf
        cbf.add(b"x")
        assert b"x" in cbf

    @given(
        st.dictionaries(
            st.binary(min_size=4, max_size=16),
            st.integers(min_value=1, max_value=5),
            max_size=32,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_counts_are_upper_bounds(self, reference_counts):
        cbf = CountingBloomFilter(max(8, len(reference_counts) * 4), 0.001)
        for item, count in reference_counts.items():
            cbf.add(item, times=count)
        for item, count in reference_counts.items():
            assert cbf.count(item) >= count

    @given(st.lists(st.binary(min_size=4, max_size=16), min_size=1, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_add_remove_symmetry(self, items):
        cbf = CountingBloomFilter(max(8, len(items) * 4), 0.001)
        for item in items:
            cbf.add(item)
        for item in items:
            cbf.remove(item)
        # After perfectly balanced add/remove, every slot is zero again.
        assert all(count == 0 for count in cbf._counters)
