"""Tests for hashing, sampling and similarity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint.hashing import FP_SIZE, fingerprint, fingerprint_hex
from repro.fingerprint.sampling import is_sampled, sample_fingerprints
from repro.fingerprint.similarity import (
    jaccard_resemblance,
    representative_fingerprints,
    sketch_overlap,
)


class TestHashing:
    def test_digest_size(self):
        assert len(fingerprint(b"data")) == FP_SIZE

    def test_deterministic(self):
        assert fingerprint(b"data") == fingerprint(b"data")

    def test_content_sensitive(self):
        assert fingerprint(b"data") != fingerprint(b"date")

    def test_hex_matches_digest(self):
        assert fingerprint_hex(b"x") == fingerprint(b"x").hex()

    def test_accepts_memoryview(self):
        payload = b"payload"
        assert fingerprint(memoryview(payload)) == fingerprint(payload)


class TestSampling:
    def test_ratio_one_samples_everything(self):
        assert is_sampled(fingerprint(b"anything"), 1)

    def test_deterministic_per_fingerprint(self):
        fp = fingerprint(b"x")
        assert is_sampled(fp, 16) == is_sampled(fp, 16)

    def test_rate_close_to_target(self):
        fps = [fingerprint(str(i).encode()) for i in range(4000)]
        sampled = sample_fingerprints(fps, 16)
        assert 4000 / 16 * 0.6 <= len(sampled) <= 4000 / 16 * 1.6

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            is_sampled(b"\x00" * 20, 0)

    def test_sampling_preserves_order(self):
        fps = [fingerprint(str(i).encode()) for i in range(100)]
        sampled = sample_fingerprints(fps, 4)
        indexes = [fps.index(fp) for fp in sampled]
        assert indexes == sorted(indexes)


class TestSimilarity:
    def test_representatives_are_minimums(self):
        fps = [fingerprint(str(i).encode()) for i in range(100)]
        reps = representative_fingerprints(fps, count=5)
        assert reps == sorted(set(fps))[:5]

    def test_representatives_deduplicate(self):
        fps = [fingerprint(b"same")] * 10
        assert len(representative_fingerprints(fps, count=5)) == 1

    def test_representatives_reject_bad_count(self):
        with pytest.raises(ValueError):
            representative_fingerprints([], count=0)

    def test_jaccard_identical(self):
        fps = [fingerprint(str(i).encode()) for i in range(10)]
        assert jaccard_resemblance(fps, fps) == 1.0

    def test_jaccard_disjoint(self):
        left = [fingerprint(f"l{i}".encode()) for i in range(10)]
        right = [fingerprint(f"r{i}".encode()) for i in range(10)]
        assert jaccard_resemblance(left, right) == 0.0

    def test_jaccard_empty_sets(self):
        assert jaccard_resemblance([], []) == 1.0

    def test_sketch_overlap_counts_shared(self):
        left = [fingerprint(str(i).encode()) for i in range(10)]
        right = left[:4] + [fingerprint(f"x{i}".encode()) for i in range(6)]
        assert sketch_overlap(left, right) == 4

    @given(st.sets(st.binary(min_size=1, max_size=8), min_size=1, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_similar_files_share_representatives(self, contents):
        """Broder's theorem in miniature: a file sharing most chunks with
        another shares representative fingerprints with high probability."""
        fps = sorted(fingerprint(c) for c in contents)
        # Drop one element: the min-hash sketch overlaps heavily.
        reduced = fps[:-1] if len(fps) > 1 else fps
        overlap = sketch_overlap(
            representative_fingerprints(fps, 4),
            representative_fingerprints(reduced, 4),
        )
        assert overlap >= min(4, len(reduced)) - 1
