"""Tests of the offline analysis package."""
