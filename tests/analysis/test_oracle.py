"""Unit tests of the analytical dedup oracle on hand-built datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConformanceReport,
    OracleBound,
    chunk_duplicate_bound,
    measured_dedup_ratio,
)
from repro.core.system import SlimStore
from repro.workloads.base import BackupFile, DatasetVersion
from tests.conftest import SMALL_CONFIG, random_bytes


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(8642)


class TestChunkBound:
    def test_identical_files_halve_the_payload(self, rng):
        payload = random_bytes(rng, 64 * 1024)
        version = DatasetVersion(
            version=0,
            files=[BackupFile("a", payload), BackupFile("b", payload)],
        )
        bound = chunk_duplicate_bound([version], SMALL_CONFIG)
        # Identical content cuts identically, so the distinct multiset
        # is exactly one copy: the bound is exactly one half.
        assert bound.logical_bytes == 2 * len(payload)
        assert bound.distinct_chunk_bytes == len(payload)
        assert bound.chunk_bound_ratio == pytest.approx(0.5)
        assert bound.total_chunks == 2 * bound.distinct_chunks

    def test_unique_content_has_zero_bound(self, rng):
        version = DatasetVersion(
            version=0, files=[BackupFile("a", random_bytes(rng, 32 * 1024))]
        )
        bound = chunk_duplicate_bound([version], SMALL_CONFIG)
        assert bound.distinct_chunk_bytes == bound.logical_bytes
        assert bound.chunk_bound_ratio == pytest.approx(0.0)

    def test_cross_version_duplicates_count(self, rng):
        payload = random_bytes(rng, 48 * 1024)
        versions = [
            DatasetVersion(version=0, files=[BackupFile("a", payload)]),
            DatasetVersion(version=1, files=[BackupFile("a", payload)]),
            DatasetVersion(version=2, files=[BackupFile("a", payload)]),
        ]
        bound = chunk_duplicate_bound(versions, SMALL_CONFIG)
        assert bound.chunk_bound_ratio == pytest.approx(2 / 3)

    def test_empty_stream(self):
        bound = chunk_duplicate_bound([], SMALL_CONFIG)
        assert bound.logical_bytes == 0
        assert bound.chunk_bound_ratio == 0.0
        assert bound.entropy_bound_ratio is None


class TestEntropyBound:
    def test_innovation_ceiling(self, rng):
        payload = random_bytes(rng, 32 * 1024)
        versions = [
            DatasetVersion(version=0, files=[BackupFile("a", payload)]),
            DatasetVersion(version=1, files=[BackupFile("a", payload)]),
        ]
        # All innovation was drawn once: fresh = one copy, logical = two.
        bound = chunk_duplicate_bound(
            versions, SMALL_CONFIG, fresh_random_bytes=len(payload)
        )
        assert bound.entropy_bound_ratio == pytest.approx(0.5)

    def test_unknown_innovation_is_none(self):
        bound = OracleBound(
            logical_bytes=10, distinct_chunk_bytes=10,
            distinct_chunks=1, total_chunks=1,
        )
        assert bound.entropy_bound_ratio is None


class TestMeasuredRatio:
    def test_repeated_backup_dedups(self, rng):
        payload = random_bytes(rng, 64 * 1024)
        store = SlimStore(SMALL_CONFIG)
        for _ in range(3):
            store.backup("f", payload)
        ratio = measured_dedup_ratio(store, 3 * len(payload))
        # Three identical versions: nearly two thirds deduplicated.
        assert ratio == pytest.approx(2 / 3, abs=0.05)

    def test_zero_logical_bytes(self, rng):
        store = SlimStore(SMALL_CONFIG)
        assert measured_dedup_ratio(store, 0) == 0.0


class TestConformanceCheck:
    def _report(self, measured: float) -> ConformanceReport:
        bound = OracleBound(
            logical_bytes=100, distinct_chunk_bytes=40,
            distinct_chunks=4, total_chunks=10,
        )
        return ConformanceReport(
            workload="t", seed=1, bound=bound, measured_ratio=measured
        )

    def test_within_gap_passes(self):
        self._report(0.58).check(max_gap=0.05)

    def test_gap_violation_raises(self):
        with pytest.raises(AssertionError, match="trails"):
            self._report(0.50).check(max_gap=0.05)

    def test_overshoot_raises(self):
        with pytest.raises(AssertionError, match="exceeds"):
            self._report(0.75).check(max_gap=0.05)

    def test_marginal_overshoot_tolerated(self):
        self._report(0.605).check(max_gap=0.05, overshoot=0.01)
