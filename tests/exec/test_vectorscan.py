"""The vectorised CDC kernels are bit-exact replicas of the serial scans.

Every claim the parallel engine makes rests on these equalities: the
log-doubling gear hash equals the serial shift-add loop mod 2^32, the
log-doubling rabin polynomial equals the serial multiply-accumulate in the
mod-2^64 ring, and ``scan_positions`` therefore reproduces every chunker's
``boundaries`` — including the rabin short-buffer quirk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import gear, rabin
from repro.chunking.base import ChunkerParams, make_chunker
from repro.exec.vectorscan import gear_hashes, rabin_hashes, scan_positions

PARAMS = ChunkerParams(min_size=128, avg_size=2048, max_size=16384)


def _payload(seed: int, size: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _serial_rabin(data: bytes) -> np.ndarray:
    """The serial multiply-accumulate loop from RabinChunker.boundaries."""
    stream = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    window_count = len(data) - rabin.WINDOW + 1
    with np.errstate(over="ignore"):
        acc = np.zeros(window_count, dtype=np.uint64)
        for t in range(rabin.WINDOW):
            acc += stream[t : t + window_count] * rabin._COEFFICIENTS[t]
    return acc


@pytest.mark.parametrize("size", [32, 33, 100, 4096, 1 << 17])
@pytest.mark.parametrize("seed", [0, 7])
def test_gear_hashes_match_serial(seed, size):
    data = _payload(seed, size)
    serial = gear.gear_hash_positions(data)
    vectorised = gear_hashes(data)
    assert vectorised.dtype == np.uint32
    assert np.array_equal(serial.astype(np.uint32), vectorised)


def test_gear_hashes_short_buffer_is_empty():
    assert gear_hashes(b"x" * (gear.WINDOW - 1)).size == 0


@pytest.mark.parametrize("size", [48, 49, 100, 4096, 1 << 16])
@pytest.mark.parametrize("seed", [1, 11])
def test_rabin_hashes_match_serial(seed, size):
    data = _payload(seed, size)
    assert np.array_equal(_serial_rabin(data), rabin_hashes(data))


def _assert_same_boundaries(chunker, data: bytes) -> None:
    serial = chunker.boundaries(data)
    scanned = scan_positions(chunker, data)
    assert scanned is not None
    permissive, strict = scanned
    assert np.array_equal(serial._positions, permissive)
    if strict is None:
        assert np.array_equal(serial._strict, serial._positions)
    else:
        assert np.array_equal(serial._strict, strict)


@pytest.mark.parametrize("name", ["gear", "fastcdc", "rabin"])
@pytest.mark.parametrize("size", [0, 31, 47, 48, 49, 1000, 1 << 16])
def test_scan_positions_match_boundaries(name, size):
    chunker = make_chunker(name, PARAMS)
    _assert_same_boundaries(chunker, _payload(3, size))


def test_scan_positions_none_for_fixed():
    chunker = make_chunker("fixed", PARAMS)
    assert scan_positions(chunker, b"x" * 1000) is None


def test_rabin_quirk_exact_window_yields_no_positions():
    """The serial rabin scan returns nothing for length <= WINDOW even
    though a 48-byte buffer holds exactly one window; the vectorised scan
    must reproduce that, not 'fix' it."""
    chunker = make_chunker("rabin", PARAMS)
    data = _payload(5, rabin.WINDOW)
    assert len(chunker.boundaries(data)._positions) == 0
    permissive, _ = scan_positions(chunker, data)
    assert permissive.size == 0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    size=st.integers(0, 3000),
    name=st.sampled_from(["gear", "fastcdc", "rabin"]),
)
def test_scan_positions_property(seed, size, name):
    chunker = make_chunker(name, PARAMS)
    _assert_same_boundaries(chunker, _payload(seed, size))


def test_low_entropy_buffers():
    """Constant and repeating buffers stress hash wraparound paths."""
    for name in ("gear", "fastcdc", "rabin"):
        chunker = make_chunker(name, PARAMS)
        for data in (b"\x00" * 5000, b"\xff" * 5000, bytes(range(256)) * 20):
            _assert_same_boundaries(chunker, data)
