"""ParallelExecutor: slab-parallel scans and pooled fingerprints are
indistinguishable from the serial path, in every mode, at every width."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.chunking.base import ChunkerParams, make_chunker
from repro.exec import IOPool, ParallelExecutor
from repro.fingerprint.hashing import fingerprint

PARAMS = ChunkerParams(min_size=128, avg_size=2048, max_size=16384)


def _payload(seed: int, size: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _assert_equal_sets(serial, parallel) -> None:
    assert serial.length == parallel.length
    assert np.array_equal(serial._positions, parallel._positions)
    assert np.array_equal(serial._strict, parallel._strict)


class TestScanBoundaries:
    @pytest.mark.parametrize("name", ["gear", "fastcdc", "rabin", "fixed"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, name, workers):
        chunker = make_chunker(name, PARAMS)
        data = _payload(13, 1 << 18)
        with ParallelExecutor(workers, slab_bytes=1 << 15) as executor:
            _assert_equal_sets(chunker.boundaries(data), executor.scan_boundaries(chunker, data))

    @pytest.mark.parametrize("size", [0, 31, 32, 47, 48, 49, 1 << 15])
    def test_edge_lengths(self, size):
        data = _payload(17, size)
        with ParallelExecutor(2, slab_bytes=1 << 15) as executor:
            for name in ("gear", "fastcdc", "rabin"):
                chunker = make_chunker(name, PARAMS)
                _assert_equal_sets(
                    chunker.boundaries(data), executor.scan_boundaries(chunker, data)
                )

    def test_tiny_slabs_force_many_tasks(self):
        """A slab barely above the floor still concatenates correctly."""
        chunker = make_chunker("fastcdc", PARAMS)
        data = _payload(19, (1 << 20) + 7)
        executor = ParallelExecutor(4)
        executor.slab_bytes = 1 << 20  # two slabs, 7-window tail merged math
        try:
            _assert_equal_sets(
                chunker.boundaries(data), executor.scan_boundaries(chunker, data)
            )
        finally:
            executor.close()

    def test_process_mode(self):
        chunker = make_chunker("gear", PARAMS)
        data = _payload(23, 1 << 17)
        with ParallelExecutor(2, mode="process", slab_bytes=1 << 15) as executor:
            _assert_equal_sets(
                chunker.boundaries(data), executor.scan_boundaries(chunker, data)
            )

    def test_inactive_falls_back(self):
        chunker = make_chunker("gear", PARAMS)
        data = _payload(29, 1 << 14)
        executor = ParallelExecutor(0)
        assert not executor.active
        assert executor.io_pool is None
        _assert_equal_sets(chunker.boundaries(data), executor.scan_boundaries(chunker, data))


class TestChunkAndFingerprint:
    @pytest.mark.parametrize("name", ["gear", "fastcdc", "rabin", "fixed"])
    def test_memo_covers_the_cdc_walk(self, name):
        chunker = make_chunker(name, PARAMS)
        data = _payload(31, 1 << 17)
        with ParallelExecutor(2, slab_bytes=1 << 15) as executor:
            boundary_set, memo = executor.chunk_and_fingerprint(chunker, data)
        # The memo spans tile the buffer exactly along the next_cut walk...
        serial = chunker.boundaries(data)
        position = 0
        while position < len(data):
            end = serial.next_cut(position)
            assert (position, end) in memo
            position = end
        # ...and every digest is the chunk's true fingerprint.
        for (start, end), digest in memo.items():
            assert digest == fingerprint(data[start:end])

    def test_blake2b_digests(self):
        chunker = make_chunker("fastcdc", PARAMS)
        data = _payload(37, 1 << 16)
        with ParallelExecutor(2) as executor:
            _, memo = executor.chunk_and_fingerprint(chunker, data, algo="blake2b")
        for (start, end), digest in memo.items():
            assert digest == hashlib.blake2b(data[start:end], digest_size=20).digest()

    def test_process_mode_memo(self):
        chunker = make_chunker("gear", PARAMS)
        data = _payload(41, 1 << 16)
        with ParallelExecutor(2, mode="process") as executor:
            _, memo = executor.chunk_and_fingerprint(chunker, data)
        assert memo
        for (start, end), digest in memo.items():
            assert digest == fingerprint(data[start:end])

    def test_empty_stream(self):
        chunker = make_chunker("gear", PARAMS)
        with ParallelExecutor(1) as executor:
            boundary_set, memo = executor.chunk_and_fingerprint(chunker, b"")
        assert boundary_set.length == 0
        assert memo == {}


class TestConstruction:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(-1)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1, mode="fibers")

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(2)
        executor.scan_boundaries(make_chunker("gear", PARAMS), _payload(43, 1 << 13))
        executor.close()
        executor.close()


class TestIOPool:
    def test_map_preserves_order(self):
        with IOPool(4) as pool:
            assert pool.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_submit_propagates_exceptions(self):
        def boom() -> None:
            raise RuntimeError("worker failure")

        with IOPool(1) as pool:
            with pytest.raises(RuntimeError, match="worker failure"):
                pool.submit(boom).result()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            IOPool(0)
