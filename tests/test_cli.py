"""CLI smoke tests: the durable on-disk repository and ``repro fsck``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main, open_repository
from tests.conftest import random_bytes


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(97531)


def test_backup_restore_roundtrip(tmp_path, rng):
    payload = random_bytes(rng, 64 * 1024)
    source = tmp_path / "accounts.tbl"
    source.write_bytes(payload)
    repo = tmp_path / "repo"

    assert main(["backup", str(repo), str(source)]) == 0
    out = tmp_path / "restored.tbl"
    assert main(["restore", str(repo), str(source), "--output", str(out)]) == 0
    assert out.read_bytes() == payload


class TestFsck:
    def test_clean_repository_exits_zero(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 32 * 1024))

        assert main(["fsck", str(repo)]) == 0
        assert "repository is consistent" in capsys.readouterr().out

    def test_open_intent_fails_without_repair(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 32 * 1024))
        # Abandon an intent the way a crashed process would.
        store.storage.journal.begin(
            "backup", path="g", watermark=store.storage.containers.peek_next_id()
        )

        assert main(["fsck", str(repo)]) == 1
        captured = capsys.readouterr()
        assert "1 open intents" in captured.out
        assert "OPEN intent" in captured.err
        assert "--repair" in captured.err

    def test_repair_recovers_and_fsck_comes_back_clean(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 32 * 1024)
        store = open_repository(repo)
        store.backup("f", payload)
        store.storage.journal.begin(
            "backup", path="g", watermark=store.storage.containers.peek_next_id()
        )

        assert main(["fsck", str(repo), "--repair"]) == 0
        assert "repository recovered" in capsys.readouterr().out
        assert main(["fsck", str(repo)]) == 0

        # The committed version survived the repair.
        fresh = open_repository(repo)
        assert fresh.restore("f", 0).data == payload

    def test_ordinary_reopen_self_heals(self, tmp_path, rng):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 32 * 1024)
        store = open_repository(repo)
        store.backup("f", payload)
        store.storage.journal.begin(
            "backup", path="g", watermark=store.storage.containers.peek_next_id()
        )

        # Any non-fsck command attaches with recovery enabled.
        fresh = open_repository(repo)
        assert fresh.last_recovery is not None
        assert fresh.storage.journal.open_intents() == []
        assert fresh.restore("f", 0).data == payload


class TestDurabilityCommand:
    def test_enable_persists_and_reopen_applies(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 96 * 1024)
        store = open_repository(repo)
        for _ in range(3):
            store.backup("f", payload)

        assert main([
            "durability", str(repo), "--enable",
            "--replicas", "3", "--hot-refs", "2", "--cold-refs", "1",
            "--fault-domains", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "durability tier enabled" in out

        # The persisted policy applies on every later open.
        fresh = open_repository(repo)
        assert fresh.storage.durability is not None
        assert fresh.storage.durability.policy.hot_refs == 2
        assert fresh.storage.durability.classes()

        # Status output reflects the live tier.
        assert main(["durability", str(repo)]) == 0
        status = capsys.readouterr().out
        assert "durability bytes:" in status
        assert "policy:" in status or "replication" in status

    def test_invalid_geometry_is_a_clean_error(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 32 * 1024))
        # k + m > domains * m: the policy validator must reject it
        # through the CLI's error path, not a traceback.
        assert main([
            "durability", str(repo), "--enable",
            "--data-shards", "7", "--parity-shards", "2",
            "--fault-domains", "3",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_disable_drops_replica_bytes(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 96 * 1024)
        store = open_repository(repo)
        for _ in range(3):
            store.backup("f", payload)
        assert main(["durability", str(repo), "--enable", "--hot-refs", "2"]) == 0
        assert main(["durability", str(repo), "--disable"]) == 0
        assert "disabled" in capsys.readouterr().out

        fresh = open_repository(repo)
        assert fresh.storage.durability is None
        bucket = fresh.storage.containers._bucket
        assert list(fresh.oss.peek_keys(bucket, "durability/")) == []
        assert fresh.restore("f", 0).data == payload

    def test_fsck_finds_and_repairs_divergent_copy(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 96 * 1024)
        store = open_repository(repo)
        for _ in range(3):
            store.backup("f", payload)
        assert main(["durability", str(repo), "--enable", "--hot-refs", "2"]) == 0

        # Rot one replica copy at rest: primary and record still agree,
        # so only the copies-agree-on-hash audit can see it.
        fresh = open_repository(repo)
        durability = fresh.storage.durability
        cid, record = next(
            (cid, record)
            for cid, record in sorted(durability._records.items())
            if record.get("copies")
        )
        key = record["copies"][0]["key"]
        bucket = fresh.storage.containers._bucket
        rotten = bytearray(fresh.oss.get_object(bucket, key))
        rotten[len(rotten) // 2] ^= 0x01
        fresh.oss.put_object(bucket, key, bytes(rotten))

        assert main(["fsck", str(repo)]) == 1
        captured = capsys.readouterr()
        assert "DIVERGENT" in captured.err
        assert main(["fsck", str(repo), "--repair"]) == 0
        assert "re-synced" in capsys.readouterr().out
        assert main(["fsck", str(repo)]) == 0

        healed = open_repository(repo)
        audit = healed.storage.durability.audit(healed.catalog.refcounts())
        assert not audit.divergent_copies
        assert healed.restore("f", 0).data == payload


class TestTraceCommand:
    def test_record_then_replay_verifies(self, tmp_path, capsys):
        trace = tmp_path / "srctree.jsonl"
        repo = tmp_path / "repo"

        assert main([
            "trace", "record", str(trace),
            "--generator", "srctree", "--seed", "11", "--versions", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded Src-Tree: 3 versions" in out
        assert trace.is_file()

        assert main(["trace", "replay", str(repo), str(trace), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "replayed Src-Tree: 3 versions" in out
        assert "verify OK" in out

    def test_replay_rejects_corrupted_trace(self, tmp_path, capsys):
        trace = tmp_path / "sdb.jsonl"
        assert main([
            "trace", "record", str(trace),
            "--generator", "sdb", "--seed", "5", "--versions", "2",
        ]) == 0
        capsys.readouterr()
        # Flip one payload character: the reader's checksum must refuse it.
        lines = trace.read_text().splitlines()
        for index, line in enumerate(lines):
            if '"record": "file"' in line:
                where = line.index('"data": "') + len('"data": "')
                flipped = "B" if line[where] != "B" else "C"
                lines[index] = line[:where] + flipped + line[where + 1:]
                break
        trace.write_text("\n".join(lines) + "\n")

        assert main(["trace", "replay", str(tmp_path / "repo"), str(trace)]) == 1
        assert "checksum mismatch" in capsys.readouterr().err

    def test_record_same_seed_is_byte_identical(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        for target in (first, second):
            assert main([
                "trace", "record", str(target),
                "--generator", "maillog", "--seed", "3", "--versions", "2",
            ]) == 0
        assert first.read_bytes() == second.read_bytes()


class TestExecutionSettings:
    """``--workers`` and ``--fingerprint`` persistence in ``repro.json``."""

    def _seed_repo(self, tmp_path, rng, extra_args=()):
        payload = random_bytes(rng, 64 * 1024)
        source = tmp_path / "accounts.tbl"
        source.write_bytes(payload)
        repo = tmp_path / "repo"
        assert main(["backup", str(repo), str(source), *extra_args]) == 0
        return repo, source, payload

    def test_workers_persist_and_apply_on_reopen(self, tmp_path, rng):
        import json

        repo, source, payload = self._seed_repo(
            tmp_path, rng, ["--workers", "2"]
        )
        settings = json.loads((repo / "repro.json").read_text())
        assert settings["workers"] == 2

        # Reopen without the flag: the pinned count drives the executor.
        store = open_repository(repo)
        try:
            assert store.config.workers == 2
            assert store.executor is not None
            assert store.restore(str(source), 0).data == payload
        finally:
            store.close()

    def test_workers_mismatch_repins_instead_of_refusing(self, tmp_path, rng):
        import json

        repo, source, payload = self._seed_repo(
            tmp_path, rng, ["--workers", "4"]
        )
        out = tmp_path / "restored.tbl"
        assert main([
            "restore", str(repo), str(source),
            "--output", str(out), "--workers", "0",
        ]) == 0
        assert out.read_bytes() == payload
        settings = json.loads((repo / "repro.json").read_text())
        assert settings["workers"] == 0

    def test_parallel_and_serial_backups_restore_identically(self, tmp_path, rng):
        payload = random_bytes(rng, 96 * 1024)
        source = tmp_path / "report.doc"
        source.write_bytes(payload)
        for name, args in (("serial", []), ("parallel", ["--workers", "2"])):
            repo = tmp_path / name
            assert main(["backup", str(repo), str(source), *args]) == 0
            out = tmp_path / f"{name}.out"
            assert main([
                "restore", str(repo), str(source), "--output", str(out)
            ]) == 0
            assert out.read_bytes() == payload

    def test_fingerprint_attach_guard_refuses_mismatch(self, tmp_path, rng, capsys):
        repo, source, _ = self._seed_repo(
            tmp_path, rng, ["--fingerprint", "blake2b"]
        )
        assert main([
            "backup", str(repo), str(source), "--fingerprint", "sha1",
        ]) == 1
        err = capsys.readouterr().err
        assert "fingerprints chunks with blake2b" in err

    def test_legacy_repository_pins_sha1(self, tmp_path, rng):
        import json

        # A repo created before the setting existed: data, no record.
        repo, source, payload = self._seed_repo(tmp_path, rng)
        settings = json.loads((repo / "repro.json").read_text())
        settings.pop("fingerprint_algo")
        (repo / "repro.json").write_text(json.dumps(settings))

        with pytest.raises(Exception, match="predates configurable"):
            open_repository(repo, fingerprint="blake2b")

        store = open_repository(repo)
        try:
            assert store.config.fingerprint_algo == "sha1"
            assert store.restore(str(source), 0).data == payload
        finally:
            store.close()
        settings = json.loads((repo / "repro.json").read_text())
        assert settings["fingerprint_algo"] == "sha1"


class TestTenantCommands:
    def test_multi_tenant_lifecycle(self, tmp_path, rng, capsys):
        repo = tmp_path / "svc"
        alice_file = tmp_path / "a.tbl"
        bob_file = tmp_path / "b.tbl"
        alice_payload = random_bytes(rng, 48 * 1024)
        alice_file.write_bytes(alice_payload)
        bob_file.write_bytes(random_bytes(rng, 48 * 1024))

        assert main(["tenant", "backup", str(repo), "alice", str(alice_file),
                     "--prefix", "db/"]) == 0
        assert main(["tenant", "backup", str(repo), "bob", str(bob_file),
                     "--prefix", "db/"]) == 0
        capsys.readouterr()

        assert main(["tenant", "list", str(repo)]) == 0
        listing = capsys.readouterr().out
        assert "alice:" in listing and "bob:" in listing

        out = tmp_path / "restored.tbl"
        assert main(["tenant", "restore", str(repo), "alice", "db/a.tbl",
                     "--output", str(out)]) == 0
        assert out.read_bytes() == alice_payload

        assert main(["tenant", "weight", str(repo), "alice", "2.5"]) == 0
        assert main(["tenant", "weight", str(repo), "alice"]) == 0
        assert "2.5" in capsys.readouterr().out

        assert main(["tenant", "remove", str(repo), "bob"]) == 0
        capsys.readouterr()
        assert main(["tenant", "list", str(repo)]) == 0
        listing = capsys.readouterr().out
        assert "bob" not in listing and "alice:" in listing

    def test_retention_collects_old_versions(self, tmp_path, rng, capsys):
        repo = tmp_path / "svc"
        source = tmp_path / "a.tbl"
        for _ in range(4):
            source.write_bytes(random_bytes(rng, 32 * 1024))
            assert main(["tenant", "backup", str(repo), "alice",
                         str(source), "--prefix", "db/"]) == 0
        capsys.readouterr()

        assert main(["tenant", "retention", str(repo), "alice",
                     "--keep-last", "2"]) == 0
        assert main(["tenant", "apply-retention", str(repo), "alice"]) == 0
        out = capsys.readouterr().out
        assert "deleted db/a.tbl@v0" in out
        assert "2 versions collected" in out

        # The survivors are still restorable after the collection.
        assert main(["tenant", "restore", str(repo), "alice", "db/a.tbl",
                     "--output", str(tmp_path / "out.tbl")]) == 0

    def test_mixed_case_tenant_is_a_clean_error(self, tmp_path, rng, capsys):
        repo = tmp_path / "svc"
        source = tmp_path / "a.tbl"
        source.write_bytes(random_bytes(rng, 16 * 1024))
        assert main(["tenant", "backup", str(repo), "Alice", str(source)]) == 2
        assert "lowercase" in capsys.readouterr().err


class TestBrowseCommands:
    def test_read_write_stat_lifecycle(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 64 * 1024)
        store = open_repository(repo)
        store.backup("f", payload)

        assert main(["browse", "stat", str(repo), "f"]) == 0
        captured = capsys.readouterr()
        assert "version:       0" in captured.out
        assert "blockcache:" in captured.err

        out = tmp_path / "slice.bin"
        assert main(["browse", "read", str(repo), "f", "1000", "64",
                     "--output", str(out)]) == 0
        assert out.read_bytes() == payload[1000:1064]

        full = tmp_path / "full.bin"
        assert main(["browse", "cat", str(repo), "f",
                     "--output", str(full)]) == 0
        assert full.read_bytes() == payload

        patch = tmp_path / "patch.bin"
        patch.write_bytes(b"PATCHED")
        assert main(["browse", "write", str(repo), "f", "2048",
                     str(patch)]) == 0
        assert "committed as v1" in capsys.readouterr().out

        expected = bytearray(payload)
        expected[2048:2055] = b"PATCHED"
        assert main(["browse", "cat", str(repo), "f",
                     "--output", str(full)]) == 0
        assert full.read_bytes() == bytes(expected)

    def test_read_past_eof_is_a_clean_error(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 1024))

        assert main(["browse", "read", str(repo), "f", "99999", "5"]) == 1
        assert "past EOF" in capsys.readouterr().err

    def test_fsck_reports_and_reaps_cache_debris(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 1024))
        store.oss.put_object(store.bucket, "browsecache/000000000009/00000000",
                             b"debris")

        assert main(["fsck", str(repo)]) == 1
        captured = capsys.readouterr()
        assert "CACHE DEBRIS" in captured.err
        assert "1 debris objects" in captured.out

        assert main(["fsck", str(repo), "--repair"]) == 0
        assert "1 cache staging objects reaped" in capsys.readouterr().out
        assert main(["fsck", str(repo)]) == 0

    def test_stats_command_prints_cache_line(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 8 * 1024))

        assert main(["browse", "stats", str(repo), "f"]) == 0
        line = capsys.readouterr().out
        assert "blockcache:" in line and "hit_ratio=" in line
