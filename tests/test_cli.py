"""CLI smoke tests: the durable on-disk repository and ``repro fsck``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main, open_repository
from tests.conftest import random_bytes


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(97531)


def test_backup_restore_roundtrip(tmp_path, rng):
    payload = random_bytes(rng, 64 * 1024)
    source = tmp_path / "accounts.tbl"
    source.write_bytes(payload)
    repo = tmp_path / "repo"

    assert main(["backup", str(repo), str(source)]) == 0
    out = tmp_path / "restored.tbl"
    assert main(["restore", str(repo), str(source), "--output", str(out)]) == 0
    assert out.read_bytes() == payload


class TestFsck:
    def test_clean_repository_exits_zero(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 32 * 1024))

        assert main(["fsck", str(repo)]) == 0
        assert "repository is consistent" in capsys.readouterr().out

    def test_open_intent_fails_without_repair(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", random_bytes(rng, 32 * 1024))
        # Abandon an intent the way a crashed process would.
        store.storage.journal.begin(
            "backup", path="g", watermark=store.storage.containers.peek_next_id()
        )

        assert main(["fsck", str(repo)]) == 1
        captured = capsys.readouterr()
        assert "1 open intents" in captured.out
        assert "OPEN intent" in captured.err
        assert "--repair" in captured.err

    def test_repair_recovers_and_fsck_comes_back_clean(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 32 * 1024)
        store = open_repository(repo)
        store.backup("f", payload)
        store.storage.journal.begin(
            "backup", path="g", watermark=store.storage.containers.peek_next_id()
        )

        assert main(["fsck", str(repo), "--repair"]) == 0
        assert "repository recovered" in capsys.readouterr().out
        assert main(["fsck", str(repo)]) == 0

        # The committed version survived the repair.
        fresh = open_repository(repo)
        assert fresh.restore("f", 0).data == payload

    def test_ordinary_reopen_self_heals(self, tmp_path, rng):
        repo = tmp_path / "repo"
        payload = random_bytes(rng, 32 * 1024)
        store = open_repository(repo)
        store.backup("f", payload)
        store.storage.journal.begin(
            "backup", path="g", watermark=store.storage.containers.peek_next_id()
        )

        # Any non-fsck command attaches with recovery enabled.
        fresh = open_repository(repo)
        assert fresh.last_recovery is not None
        assert fresh.storage.journal.open_intents() == []
        assert fresh.restore("f", 0).data == payload
