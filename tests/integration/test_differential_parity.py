"""Differential restore parity: every system, every version, byte-exact.

The benches compare SLIMSTORE against DDFS, SiLO, Sparse Indexing, HAR and
restic on throughput and space — comparisons that are only meaningful if
every system is actually a *backup* system, i.e. can hand back each stored
version byte-for-byte.  This suite runs the same seeded multi-version
workload through all six and cross-checks their restores against the
original payloads and against each other.
"""

from __future__ import annotations

import pytest

from repro import SlimStore
from repro.baselines import (
    DDFSSystem,
    HARDriver,
    ResticRepository,
    SiLOSystem,
    SparseIndexingSystem,
)
from repro.core.storage import StorageLayer
from repro.oss.object_store import ObjectStorageService
from tests.conftest import (
    SMALL_CONFIG,
    bucket_state,
    make_chaos_store,
    make_version_chain,
)

SYSTEMS = ["slimstore", "ddfs", "restic", "silo", "sparse_indexing", "har"]


class _Restic:
    """Adapter giving restic the same (path, version) surface."""

    def __init__(self) -> None:
        # Small chunks so the test payloads span many blobs and packs.
        self.repo = ResticRepository(ObjectStorageService(), chunk_avg=4096)
        self._snapshots: dict[str, list[str]] = {}

    def backup(self, path: str, data: bytes) -> None:
        result = self.repo.backup(path, data)
        self._snapshots.setdefault(path, []).append(result.snapshot_id)

    def restore(self, path: str, version: int) -> bytes:
        return self.repo.restore(self._snapshots[path][version]).data


class _SlimStore:
    def __init__(self) -> None:
        self.store = SlimStore(SMALL_CONFIG)

    def backup(self, path: str, data: bytes) -> None:
        self.store.backup(path, data)

    def restore(self, path: str, version: int) -> bytes:
        return self.store.restore(path, version).data


class _HAR:
    def __init__(self) -> None:
        storage = StorageLayer.create(ObjectStorageService())
        self.driver = HARDriver(SMALL_CONFIG, storage)

    def backup(self, path: str, data: bytes) -> None:
        self.driver.backup(path, data)

    def restore(self, path: str, version: int) -> bytes:
        return self.driver.restore(path, version)


def build_system(name: str):
    if name == "slimstore":
        return _SlimStore()
    if name == "ddfs":
        return DDFSSystem(ObjectStorageService(), SMALL_CONFIG)
    if name == "restic":
        return _Restic()
    if name == "silo":
        return SiLOSystem(ObjectStorageService(), SMALL_CONFIG)
    if name == "sparse_indexing":
        return SparseIndexingSystem(ObjectStorageService(), SMALL_CONFIG)
    if name == "har":
        return _HAR()
    raise ValueError(name)


@pytest.fixture(scope="module")
def workload():
    """Two files x four versions of seeded, mutation-linked payloads."""
    import numpy as np

    rng = np.random.default_rng(777)
    return {
        "db/accounts.tbl": make_version_chain(rng, versions=4, size=192 * 1024),
        "home/report.doc": make_version_chain(
            rng, versions=4, size=96 * 1024, runs=3, run_bytes=4 * 1024
        ),
    }


@pytest.fixture(scope="module")
def restored(workload):
    """Every system's restore of every (path, version), computed once."""
    outputs: dict[str, dict[tuple[str, int], bytes]] = {}
    for name in SYSTEMS:
        system = build_system(name)
        for path, versions in workload.items():
            for data in versions:
                system.backup(path, data)
        outputs[name] = {
            (path, version): system.restore(path, version)
            for path, versions in workload.items()
            for version in range(len(versions))
        }
    return outputs


@pytest.mark.parametrize("name", SYSTEMS)
def test_every_version_restores_byte_exact(name, workload, restored):
    for path, versions in workload.items():
        for version, data in enumerate(versions):
            assert restored[name][(path, version)] == data, (
                f"{name}: {path}@v{version} diverged from the source payload"
            )


def test_all_systems_agree_with_each_other(workload, restored):
    """Pairwise parity: one shared oracle, not six independent ones."""
    reference = restored[SYSTEMS[0]]
    for name in SYSTEMS[1:]:
        assert restored[name] == reference, f"{name} != {SYSTEMS[0]}"


@pytest.mark.parametrize("name", ["ddfs", "silo", "sparse_indexing"])
def test_latest_version_is_the_default_restore(name, workload):
    system = build_system(name)
    path = "db/accounts.tbl"
    for data in workload[path]:
        system.backup(path, data)
    assert system.restore(path, None) == workload[path][-1]


@pytest.fixture(scope="module")
def diversity_workload():
    """Stable paths from the diversity generators, version-for-version.

    Src-Tree renames and churns files and R-Data deletes them, so the
    per-path version surface the six systems share only covers paths
    present in *every* version; each generator contributes its two
    first such paths at tiny scale.
    """
    from repro.workloads import make_generator

    streams: dict[str, list[bytes]] = {}
    shapes = {
        "vmfleet": dict(image_count=2, image_bytes=64 * 1024),
        "srctree": dict(file_count=12),
        "maillog": dict(mailbox_count=2, initial_records=8),
    }
    for name, shape in shapes.items():
        generator = make_generator(name, seed=555, version_count=3, **shape)
        versions = generator.versions()
        stable = sorted(
            set.intersection(*({f.path for f in v.files} for v in versions))
        )
        for path in stable[:2]:
            streams[path] = [
                next(f.data for f in v.files if f.path == path)
                for v in versions
            ]
    assert len(streams) == 6
    return streams


@pytest.fixture(scope="module")
def diversity_restored(diversity_workload):
    outputs: dict[str, dict[tuple[str, int], bytes]] = {}
    for name in SYSTEMS:
        system = build_system(name)
        for path, versions in diversity_workload.items():
            for data in versions:
                system.backup(path, data)
        outputs[name] = {
            (path, version): system.restore(path, version)
            for path, versions in diversity_workload.items()
            for version in range(len(versions))
        }
    return outputs


@pytest.mark.parametrize("name", SYSTEMS)
def test_diversity_workloads_restore_byte_exact(
    name, diversity_workload, diversity_restored
):
    for path, versions in diversity_workload.items():
        for version, data in enumerate(versions):
            assert diversity_restored[name][(path, version)] == data, (
                f"{name}: {path}@v{version} diverged from the source payload"
            )


def test_diversity_workloads_all_systems_agree(diversity_restored):
    reference = diversity_restored[SYSTEMS[0]]
    for name in SYSTEMS[1:]:
        assert diversity_restored[name] == reference, f"{name} != {SYSTEMS[0]}"


# ---------------------------------------------------------------------------
# Serial vs parallel SLIMSTORE parity
# ---------------------------------------------------------------------------

#: (workers, exec_mode) points covering thread fan-out and process fan-out.
PARALLEL_MODES = [(1, "thread"), (4, "thread"), (2, "process")]


def _parity_workload(seed: int) -> dict[str, list[bytes]]:
    import numpy as np

    rng = np.random.default_rng(seed)
    return {
        "db/accounts.tbl": make_version_chain(rng, versions=3, size=128 * 1024),
        "home/report.doc": make_version_chain(
            rng, versions=3, size=64 * 1024, runs=3, run_bytes=4 * 1024
        ),
    }


def _run_slimstore(
    workload: dict[str, list[bytes]],
    workers: int,
    exec_mode: str,
    *,
    chaos_seed: int | None = None,
    **rates,
):
    """Ingest + restore the workload; return (bucket bytes, restores)."""
    config = SMALL_CONFIG.with_overrides(workers=workers, exec_mode=exec_mode)
    if chaos_seed is None:
        store = SlimStore(config)
    else:
        store, _faults = make_chaos_store(seed=chaos_seed, config=config, **rates)
    try:
        for path, versions in workload.items():
            for data in versions:
                store.backup(path, data)
        restores = {
            (path, version): store.restore(path, version).data
            for path, versions in workload.items()
            for version in range(len(versions))
        }
        return bucket_state(store.oss), restores
    finally:
        store.close()


class TestSerialVsParallelParity:
    """The parallel engine is a pure wall-clock optimisation: the repository
    it writes and the bytes it restores must be indistinguishable from the
    serial path at every worker count, in both execution modes, with and
    without injected faults."""

    @pytest.mark.parametrize("workers,exec_mode", PARALLEL_MODES)
    @pytest.mark.parametrize("seed", [101, 202])
    def test_parallel_repository_is_byte_identical(self, seed, workers, exec_mode):
        workload = _parity_workload(seed)
        serial_state, serial_restores = _run_slimstore(workload, 0, "thread")
        parallel_state, parallel_restores = _run_slimstore(
            workload, workers, exec_mode
        )
        assert parallel_restores == serial_restores
        assert parallel_state == serial_state, (
            f"workers={workers} mode={exec_mode}: repository bytes diverged"
        )
        for path, versions in workload.items():
            for version, data in enumerate(versions):
                assert serial_restores[(path, version)] == data

    @pytest.mark.parametrize("workers,exec_mode", [(4, "thread"), (2, "process")])
    @pytest.mark.parametrize(
        "rates",
        [
            dict(get_error_rate=0.05, put_error_rate=0.05),
            dict(put_error_rate=0.03, torn_write_rate=0.05),
        ],
        ids=["transient-errors", "torn-writes"],
    )
    def test_parallel_parity_under_chaos(self, workers, exec_mode, rates):
        """Same fault seed, serial vs parallel: the engine gates concurrent
        IO off whenever a fault policy is installed, so the seeded fault
        draws land on the same operations in the same order and the two
        repositories stay byte-identical."""
        workload = _parity_workload(303)
        serial_state, serial_restores = _run_slimstore(
            workload, 0, "thread", chaos_seed=4040, **rates
        )
        parallel_state, parallel_restores = _run_slimstore(
            workload, workers, exec_mode, chaos_seed=4040, **rates
        )
        assert parallel_restores == serial_restores
        assert parallel_state == serial_state, (
            f"workers={workers} mode={exec_mode}: chaos run diverged from serial"
        )
        for path, versions in workload.items():
            for version, data in enumerate(versions):
                assert serial_restores[(path, version)] == data

    @pytest.mark.parametrize("workers,exec_mode", [(2, "thread")])
    def test_parallel_blake2b_repository_is_byte_identical(self, workers, exec_mode):
        """Fingerprint algorithm and worker count compose: a blake2b repo
        built in parallel equals a blake2b repo built serially."""
        workload = _parity_workload(404)
        base = SMALL_CONFIG.with_overrides(fingerprint_algo="blake2b")
        serial = SlimStore(base.with_overrides(workers=0))
        parallel = SlimStore(
            base.with_overrides(workers=workers, exec_mode=exec_mode)
        )
        try:
            for store in (serial, parallel):
                for path, versions in workload.items():
                    for data in versions:
                        store.backup(path, data)
            assert bucket_state(parallel.oss) == bucket_state(serial.oss)
            for path, versions in workload.items():
                for version, data in enumerate(versions):
                    assert parallel.restore(path, version).data == data
        finally:
            serial.close()
            parallel.close()
