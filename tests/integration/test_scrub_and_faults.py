"""Scrubbing and failure injection: the repository under damage."""

import pytest

from repro import SlimStore
from repro.cli import main
from repro.core.scrub import RepositoryScrubber
from repro.errors import RestoreError, RetryExhaustedError
from tests.conftest import (
    SMALL_CONFIG as CONFIG,
    make_chaos_store as chaos_store,
    mutate,
    random_bytes,
)


class TestScrubClean:
    def test_healthy_repository_scrubs_clean(self, aged_store):
        store, _ = aged_store
        report = store.scrub()
        assert report.clean
        assert report.containers_checked > 0
        assert report.chunks_verified > 0
        assert report.recipes_checked == 6
        assert not report.corrupt_chunks
        assert not report.unresolvable_records

    def test_redirects_counted_not_flagged(self, aged_store):
        store, _ = aged_store
        report = store.scrub()
        # G-node moved chunks: old recipes legitimately redirect.
        assert report.redirected_records >= 0
        assert report.unresolvable_records == []

    def test_container_pass_without_catalog(self, aged_store):
        store, _ = aged_store
        report = RepositoryScrubber(store.storage).scrub(None)
        assert report.containers_checked > 0
        assert report.recipes_checked == 0


class TestScrubDetectsDamage:
    def test_detects_flipped_bits(self, aged_store):
        store, _ = aged_store
        cid = store.storage.containers.container_ids()[0]
        payload = bytearray(store.storage.containers.read_data(cid))
        payload[len(payload) // 2] ^= 0xFF
        store.oss.put_object("slimstore", f"containers/{cid:012d}.data", bytes(payload))
        report = store.scrub()
        assert not report.clean
        assert any(found_cid == cid for found_cid, _ in report.corrupt_chunks)

    def test_detects_dangling_records(self, aged_store):
        store, _ = aged_store
        # Nuke a container referenced by the oldest recipe.
        recipe = store.storage.recipes.get_recipe("f", 0)
        victim = sorted(recipe.referenced_containers())[0]
        store.storage.containers.delete(victim)
        report = store.scrub()
        assert not report.clean
        assert any(path == "f" for path, _v, _fp in report.unresolvable_records)

    def test_cli_scrub_exit_codes(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        sample = tmp_path / "s.bin"
        sample.write_bytes(random_bytes(rng, 64 * 1024))
        main(["backup", str(repo), str(sample)])
        assert main(["scrub", str(repo)]) == 0
        assert "clean" in capsys.readouterr().out
        # Corrupt a container object on disk and scrub again.
        container = next((repo / "slimstore" / "containers").glob("*.data"))
        blob = bytearray(container.read_bytes())
        blob[100] ^= 0xFF
        container.write_bytes(bytes(blob))
        assert main(["scrub", str(repo)]) == 1
        assert "CORRUPT" in capsys.readouterr().err


class TestFaultTolerance:
    def test_restore_other_versions_despite_one_bad_container(self, aged_store):
        """Damage to one version's container leaves other versions intact."""
        store, payloads = aged_store
        latest = store.versions("f")[-1]
        latest_recipe = store.storage.recipes.get_recipe("f", latest)
        latest_cids = latest_recipe.referenced_containers()
        # Corrupt a container NOT referenced by the latest version.
        for cid in store.storage.containers.container_ids():
            if cid not in latest_cids:
                payload = bytearray(store.storage.containers.read_data(cid))
                payload[0] ^= 0xFF
                store.oss.put_object(
                    "slimstore", f"containers/{cid:012d}.data", bytes(payload)
                )
                break
        assert store.restore("f", latest).data == payloads[latest]

    def test_verified_restore_refuses_corrupt_data(self, aged_store):
        store, _ = aged_store
        latest = store.versions("f")[-1]
        recipe = store.storage.recipes.get_recipe("f", latest)
        cid = sorted(recipe.referenced_containers())[-1]
        payload = bytearray(store.storage.containers.read_data(cid))
        payload[1] ^= 0xFF
        store.oss.put_object("slimstore", f"containers/{cid:012d}.data", bytes(payload))
        with pytest.raises(RestoreError):
            store.restore("f", latest, verify=True)


# ---------------------------------------------------------------------------
# Fault injection, degraded-mode dedup and scrub repair
# ---------------------------------------------------------------------------

def find_duplicate_chunk(store):
    """A fingerprint with two live physical copies, or None."""
    containers = store.storage.containers
    seen = {}
    for cid in containers.container_ids():
        meta = containers.read_meta(cid)
        for entry in meta.entries:
            if entry.alias or entry.deleted:
                continue
            key = (entry.fp, entry.size)
            if key in seen and seen[key][0] != cid:
                return seen[key], (cid, entry)
            seen.setdefault(key, (cid, entry))
    return None


def corrupt_chunk(store, cid, entry):
    payload = bytearray(store.storage.containers.read_data(cid))
    payload[entry.offset + entry.size // 2] ^= 0x01
    store.oss.put_object("slimstore", f"containers/{cid:012d}.data", bytes(payload))


class TestRetryExhaustion:
    def test_full_outage_aborts_backup(self, rng):
        store, faults = chaos_store()
        faults.outage()
        with pytest.raises(RetryExhaustedError):
            store.backup("f", random_bytes(rng, 64 * 1024))

    def test_backup_succeeds_after_revive(self, rng):
        store, faults = chaos_store()
        data = random_bytes(rng, 64 * 1024)
        faults.outage()
        with pytest.raises(RetryExhaustedError):
            store.backup("f", data)
        faults.revive()
        report = store.backup("f", data)
        assert not report.degraded
        assert store.restore("f").data == data


class TestDegradedBackup:
    def test_get_outage_degrades_instead_of_aborting(self, rng):
        store, faults = chaos_store()
        v0 = random_bytes(rng, 256 * 1024)
        store.backup("f", v0)
        v1 = mutate(rng, v0, runs=2, run_bytes=8 * 1024)

        faults.outage({"get"})  # dedup lookups fail, writes still drain
        report = store.backup("f", v1)
        faults.revive()

        assert report.degraded
        assert report.result.counters.get("degraded_events") > 0
        assert report.result.counters.get("degraded_chunks") > 0
        assert store.degraded_versions() == [("f", 1)]
        assert store.catalog.is_degraded("f", 1)
        # The degraded version restored byte-identically all along.
        assert store.restore("f", 1).data == v1
        assert store.restore("f", 0).data == v0

    def test_reclaim_degraded_recovers_the_space(self, rng):
        store, faults = chaos_store()
        v0 = random_bytes(rng, 256 * 1024)
        store.backup("f", v0)
        v1 = mutate(rng, v0, runs=2, run_bytes=8 * 1024)
        faults.outage({"get"})
        store.backup("f", v1)
        faults.revive()

        report = store.reclaim_degraded()
        assert report is not None
        assert report.duplicates_removed > 0
        assert report.counters.get("degraded_reclaimed") > 0
        assert store.degraded_versions() == []
        # Reclamation must not damage either version.
        assert store.restore("f", 0).data == v0
        assert store.restore("f", 1).data == v1

    def test_reclaim_without_degraded_versions_is_none(self, rng):
        store, _ = chaos_store()
        store.backup("f", random_bytes(rng, 64 * 1024))
        assert store.reclaim_degraded() is None

    def test_degraded_flag_survives_catalog_roundtrip(self, rng):
        store, faults = chaos_store()
        v0 = random_bytes(rng, 128 * 1024)
        store.backup("f", v0)
        faults.outage({"get"})
        store.backup("f", mutate(rng, v0, runs=1, run_bytes=4 * 1024))
        faults.revive()

        attached = SlimStore(CONFIG, store.oss)
        attached.recover()
        assert attached.degraded_versions() == [("f", 1)]


class TestScrubRepair:
    def test_repair_heals_from_duplicate_copy(self, rng):
        store, faults = chaos_store()
        v0 = random_bytes(rng, 256 * 1024)
        store.backup("f", v0)
        v1 = mutate(rng, v0, runs=2, run_bytes=8 * 1024)
        faults.outage({"get"})
        store.backup("f", v1)  # degraded: shared chunks stored twice
        faults.revive()
        store.oss.set_fault_policy(None)

        duplicate = find_duplicate_chunk(store)
        assert duplicate is not None
        _first, (cid, entry) = duplicate
        corrupt_chunk(store, cid, entry)
        assert not store.scrub().clean

        report = store.scrub(repair=True)
        assert report.chunks_repaired >= 1
        assert report.containers_rewritten >= 1
        assert not report.quarantined_chunks
        assert report.fully_repaired
        assert store.scrub().clean
        assert store.restore("f", 0).data == v0
        assert store.restore("f", 1).data == v1

    def test_unrecoverable_chunk_is_quarantined(self, rng):
        store = SlimStore(CONFIG)
        store.backup("f", random_bytes(rng, 64 * 1024))
        cid = store.storage.containers.container_ids()[0]
        meta = store.storage.containers.read_meta(cid)
        entry = next(e for e in meta.entries if not e.alias)
        corrupt_chunk(store, cid, entry)

        report = store.scrub(repair=True)
        assert (cid, entry.fp) in report.quarantined_chunks
        assert not report.fully_repaired
        # Quarantined chunks are out of circulation: the container pass no
        # longer flags them, but the recipe pass surfaces the data loss.
        after = store.scrub()
        assert not after.corrupt_chunks
        assert any(fp == entry.fp for _p, _v, fp in after.unresolvable_records)

    def test_cli_scrub_repair_flag(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        sample = tmp_path / "s.bin"
        sample.write_bytes(random_bytes(rng, 64 * 1024))
        main(["backup", str(repo), str(sample)])
        assert main(["scrub", str(repo), "--repair"]) == 0
        assert "clean" in capsys.readouterr().out
        container = next((repo / "slimstore" / "containers").glob("*.data"))
        blob = bytearray(container.read_bytes())
        blob[100] ^= 0xFF
        container.write_bytes(bytes(blob))
        # Single copy of every chunk: repair can only quarantine.
        assert main(["scrub", str(repo), "--repair"]) == 1
        captured = capsys.readouterr()
        assert "quarantined" in captured.out
        assert "QUARANTINED" in captured.err


class TestSeededChaos:
    """The acceptance scenario: six versions under ~5% transient faults."""

    def test_six_version_cycle_with_faults_degradation_and_repair(self, rng):
        store, faults = chaos_store(
            seed=2026,
            get_error_rate=0.05,
            put_error_rate=0.05,
            torn_write_rate=0.05,
            latency_spike_rate=0.02,
            latency_spike_seconds=0.1,
        )
        payloads = [random_bytes(rng, 256 * 1024)]
        store.backup("f", payloads[0])
        for _ in range(2):
            payloads.append(mutate(rng, payloads[-1], runs=2, run_bytes=8 * 1024))
            store.backup("f", payloads[-1])

        # Version 3 lands during a read outage: backed up in degraded mode.
        payloads.append(mutate(rng, payloads[-1], runs=2, run_bytes=8 * 1024))
        faults.outage({"get"})
        degraded_report = store.backup("f", payloads[-1])
        faults.revive()
        assert degraded_report.degraded
        assert degraded_report.result.counters.get("degraded_chunks") > 0
        client = store.storage.oss
        # Only the outage could exhaust retries (that is what degraded
        # mode absorbed); the ~5% transient schedule never does.
        exhausted_by_outage = client.retry_stats.exhausted_operations
        assert exhausted_by_outage > 0

        for _ in range(2):
            payloads.append(mutate(rng, payloads[-1], runs=2, run_bytes=8 * 1024))
            store.backup("f", payloads[-1])

        # The retrying client absorbed the fault schedule.
        assert faults.stats.faults_injected > 0
        assert client.retry_stats.retries > 0
        assert client.retry_stats.exhausted_operations == exhausted_by_outage

        # Every version restores byte-identically, faults still active.
        for version, expected in enumerate(payloads):
            assert store.restore("f", version).data == expected

        # Quiesce the endpoint, then heal an injected bit flip from the
        # duplicate copy the degraded backup left behind.
        store.oss.set_fault_policy(None)
        duplicate = find_duplicate_chunk(store)
        assert duplicate is not None
        _first, (cid, entry) = duplicate
        corrupt_chunk(store, cid, entry)
        repair_report = store.scrub(repair=True)
        assert repair_report.chunks_repaired >= 1
        assert repair_report.fully_repaired
        assert store.scrub().clean

        # The out-of-line G-node pass settles the degraded version's debt.
        assert store.degraded_versions() == [("f", 3)]
        reclaim = store.reclaim_degraded()
        assert reclaim is not None
        assert reclaim.duplicates_removed > 0
        assert reclaim.counters.get("degraded_reclaimed") > 0
        assert store.degraded_versions() == []

        for version, expected in enumerate(payloads):
            assert store.restore("f", version).data == expected
        assert store.scrub().clean
