"""Scrubbing and failure injection: the repository under damage."""

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.cli import main
from repro.core.scrub import RepositoryScrubber
from repro.errors import RestoreError
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=32 * 1024,
    merge_threshold=3,
)


@pytest.fixture
def aged_store(rng):
    """A store with history: merging, compaction and reverse dedup ran."""
    store = SlimStore(CONFIG)
    data = random_bytes(rng, 256 * 1024)
    payloads = [data]
    store.backup("f", data)
    for _ in range(5):
        payloads.append(mutate(rng, payloads[-1], runs=2, run_bytes=8 * 1024))
        store.backup("f", payloads[-1])
    return store, payloads


class TestScrubClean:
    def test_healthy_repository_scrubs_clean(self, aged_store):
        store, _ = aged_store
        report = store.scrub()
        assert report.clean
        assert report.containers_checked > 0
        assert report.chunks_verified > 0
        assert report.recipes_checked == 6
        assert not report.corrupt_chunks
        assert not report.unresolvable_records

    def test_redirects_counted_not_flagged(self, aged_store):
        store, _ = aged_store
        report = store.scrub()
        # G-node moved chunks: old recipes legitimately redirect.
        assert report.redirected_records >= 0
        assert report.unresolvable_records == []

    def test_container_pass_without_catalog(self, aged_store):
        store, _ = aged_store
        report = RepositoryScrubber(store.storage).scrub(None)
        assert report.containers_checked > 0
        assert report.recipes_checked == 0


class TestScrubDetectsDamage:
    def test_detects_flipped_bits(self, aged_store):
        store, _ = aged_store
        cid = store.storage.containers.container_ids()[0]
        payload = bytearray(store.storage.containers.read_data(cid))
        payload[len(payload) // 2] ^= 0xFF
        store.oss.put_object("slimstore", f"containers/{cid:012d}.data", bytes(payload))
        report = store.scrub()
        assert not report.clean
        assert any(found_cid == cid for found_cid, _ in report.corrupt_chunks)

    def test_detects_dangling_records(self, aged_store):
        store, _ = aged_store
        # Nuke a container referenced by the oldest recipe.
        recipe = store.storage.recipes.get_recipe("f", 0)
        victim = sorted(recipe.referenced_containers())[0]
        store.storage.containers.delete(victim)
        report = store.scrub()
        assert not report.clean
        assert any(path == "f" for path, _v, _fp in report.unresolvable_records)

    def test_cli_scrub_exit_codes(self, tmp_path, rng, capsys):
        repo = tmp_path / "repo"
        sample = tmp_path / "s.bin"
        sample.write_bytes(random_bytes(rng, 64 * 1024))
        main(["backup", str(repo), str(sample)])
        assert main(["scrub", str(repo)]) == 0
        assert "clean" in capsys.readouterr().out
        # Corrupt a container object on disk and scrub again.
        container = next((repo / "slimstore" / "containers").glob("*.data"))
        blob = bytearray(container.read_bytes())
        blob[100] ^= 0xFF
        container.write_bytes(bytes(blob))
        assert main(["scrub", str(repo)]) == 1
        assert "CORRUPT" in capsys.readouterr().err


class TestFaultTolerance:
    def test_restore_other_versions_despite_one_bad_container(self, aged_store):
        """Damage to one version's container leaves other versions intact."""
        store, payloads = aged_store
        latest = store.versions("f")[-1]
        latest_recipe = store.storage.recipes.get_recipe("f", latest)
        latest_cids = latest_recipe.referenced_containers()
        # Corrupt a container NOT referenced by the latest version.
        for cid in store.storage.containers.container_ids():
            if cid not in latest_cids:
                payload = bytearray(store.storage.containers.read_data(cid))
                payload[0] ^= 0xFF
                store.oss.put_object(
                    "slimstore", f"containers/{cid:012d}.data", bytes(payload)
                )
                break
        assert store.restore("f", latest).data == payloads[latest]

    def test_verified_restore_refuses_corrupt_data(self, aged_store):
        store, _ = aged_store
        latest = store.versions("f")[-1]
        recipe = store.storage.recipes.get_recipe("f", latest)
        cid = sorted(recipe.referenced_containers())[-1]
        payload = bytearray(store.storage.containers.read_data(cid))
        payload[1] ^= 0xFF
        store.oss.put_object("slimstore", f"containers/{cid:012d}.data", bytes(payload))
        with pytest.raises(RestoreError):
            store.restore("f", latest, verify=True)
