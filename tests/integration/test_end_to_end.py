"""End-to-end integration: the full system on real workloads."""

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.workloads import RDataConfig, RDataGenerator, SDBConfig, SDBGenerator

CONFIG = SlimStoreConfig(
    container_bytes=128 * 1024,
    segment_bytes=64 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=64 * 1024,
    merge_threshold=3,
)


class TestSDBLifecycle:
    @pytest.fixture(scope="class")
    def run(self):
        generator = SDBGenerator(
            SDBConfig(table_count=2, initial_table_bytes=512 * 1024,
                      version_count=8, seed=99)
        )
        versions = generator.versions()
        store = SlimStore(CONFIG)
        reports = []
        for dataset_version in versions:
            for item in dataset_version.files:
                reports.append(store.backup(item.path, item.data))
        return store, versions, reports

    def test_all_versions_restore_byte_exact(self, run):
        store, versions, _ = run
        for dataset_version in versions:
            for item in dataset_version.files:
                restored = store.restore(item.path, dataset_version.version)
                assert restored.data == item.data, (
                    f"{item.path}@v{dataset_version.version}"
                )

    def test_dedup_bounds_total_space(self, run):
        store, versions, _ = run
        logical = sum(v.total_bytes for v in versions)
        stored = store.space_report().container_bytes
        assert stored < logical / 2

    def test_throughput_improves_after_first_version(self, run):
        _, _, reports = run
        first = reports[0].throughput_mb_s
        later = reports[-1].throughput_mb_s
        assert later > 1.5 * first

    def test_offline_work_happened(self, run):
        _, _, reports = run
        assert any(
            r.reverse_dedup and r.reverse_dedup.duplicates_removed > 0
            for r in reports
        )
        assert any(
            r.compaction and r.compaction.sparse_containers for r in reports
        )


class TestRDataLifecycle:
    @pytest.fixture(scope="class")
    def run(self):
        generator = RDataGenerator(
            RDataConfig(file_count=12, version_count=4,
                        max_file_bytes=256 * 1024, seed=7)
        )
        versions = generator.versions()
        store = SlimStore(CONFIG)
        for dataset_version in versions:
            for item in dataset_version.files:
                store.backup(item.path, item.data)
        return store, versions

    def test_every_file_every_version_restores(self, run):
        store, versions = run
        for dataset_version in versions:
            for item in dataset_version.files:
                version = store.versions(item.path)
                # Files created later have fewer versions; map by count.
                target = version[min(dataset_version.version, len(version) - 1)]
                data = store.restore(item.path, target).data
                assert isinstance(data, bytes)
        # Exact check on the latest state of every surviving file.
        for item in versions[-1].files:
            assert store.restore(item.path).data == item.data

    def test_unchanged_files_are_free(self, run):
        store, versions = run
        # Identical consecutive versions of a file dedupe ~completely.
        first = {f.path: f.data for f in versions[-2].files}
        for item in versions[-1].files:
            if item.path in first and first[item.path] == item.data:
                live = store.versions(item.path)
                assert len(live) >= 2
                return


class TestRetentionLifecycle:
    def test_rolling_window_bounded_space(self, rng):
        from tests.conftest import mutate, random_bytes

        store = SlimStore(CONFIG)
        data = random_bytes(rng, 256 * 1024)
        keep = 3
        sizes = []
        payloads = []
        for version in range(9):
            store.backup("f", data)
            payloads.append(data)
            if version >= keep:
                store.delete_version("f", version - keep)
            sizes.append(store.space_report().container_bytes)
            data = mutate(rng, data, runs=2, run_bytes=16 * 1024)
        # Space stays bounded instead of growing with version count.
        assert sizes[-1] < 2.5 * sizes[keep]
        # The retained window restores exactly.
        for version in store.versions("f"):
            assert store.restore("f", version).data == payloads[version]
