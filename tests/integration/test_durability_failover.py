"""Acceptance for the durability tier: any single fault domain can go
dark — and stored bits can rot — without losing a byte of any version.

Three layers of proof:

* **Outage failover** — with a 3-domain layout and no live singletons,
  every version restores byte-identically while any one domain's GETs
  fail, the reads falling over to replicas or erasure decode;
* **Bit-rot healing** — seeded at-rest bit flips in primary payloads are
  healed from the durability tier by restore and by ``scrub --repair``
  with *zero* quarantined chunks;
* **Crash matrix** — a backup whose maintenance pass promotes, stripes
  and retires durability state is killed at every OSS write; recovery
  always lands on atomic class visibility with no orphaned replica
  bytes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.durability import CLASS_REPLICATED, CLASS_SINGLE
from repro.core.system import SlimStore
from repro.oss.faults import FaultPolicy
from tests.conftest import SMALL_CONFIG, make_version_chain
from tests.integration.test_crash_matrix import (
    assert_zero_debris,
    attach,
    clone_state,
    run_matrix,
)

#: 3 domains, no live singletons: one reference is enough for erasure,
#: three for replication, so every referenced container survives any
#: single-domain outage.
DURABLE_CONFIG = replace(
    SMALL_CONFIG,
    durability_enabled=True,
    fault_domains=3,
    durability_replicas=3,
    durability_hot_refs=3,
    durability_cold_refs=1,
    erasure_data_shards=4,
    erasure_parity_shards=2,
)


def aged_durable_store(seed: int = 20260808, versions: int = 4):
    rng = np.random.default_rng(seed)
    store = SlimStore(DURABLE_CONFIG)
    chain = make_version_chain(rng, versions=versions)
    for payload in chain:
        store.backup("f", payload)
    return store, chain


def flip_primary_byte(store: SlimStore, cid: int) -> None:
    """Rot one mid-payload bit of a container's primary, at rest."""
    key = f"containers/{cid:012d}.data"
    payload = bytearray(store.oss.get_object("slimstore", key))
    payload[len(payload) // 2] ^= 0x01
    store.oss.put_object("slimstore", key, bytes(payload))


class TestSingleDomainOutage:
    @pytest.mark.parametrize("domain", [0, 1, 2])
    def test_every_version_restores_through_any_domain_outage(self, domain):
        store, chain = aged_durable_store()
        durability = store.storage.durability
        classes = durability.classes()
        live = set(store.storage.containers.container_ids())
        # Precondition of the guarantee: no live container is single-copy.
        assert all(classes.get(cid) != CLASS_SINGLE for cid in live)
        assert any(cid % 3 == domain for cid in live)

        # Rot a byte in one *replicated* primary outside the dark domain
        # too, so the run exercises both failover (outage) and healing
        # (bit rot).  Replication tolerates the two combined losses; an
        # erasure stripe is only contracted to survive the outage alone.
        rotted = next(
            (
                cid
                for cid in sorted(live)
                if cid % 3 != domain and classes.get(cid) == CLASS_REPLICATED
            ),
            None,
        )
        if rotted is not None:
            flip_primary_byte(store, rotted)

        faults = FaultPolicy(fault_domains=3)
        store.oss.set_fault_policy(faults)
        faults.outage({"get", "head"}, domain=domain)
        for version, payload in enumerate(chain):
            assert store.restore("f", version).data == payload
        assert durability.replica_failovers + durability.erasure_decodes > 0

        # After the domain comes back, a repairing scrub quarantines
        # nothing: the rotted chunk heals from the durability tier.
        faults.revive(domain=domain)
        report = store.scrub(repair=True)
        assert not report.quarantined_chunks
        assert report.clean or report.fully_repaired


def rot_within_fault_model(store: SlimStore, dark_domain: int | None = None) -> list[int]:
    """Flip a bit in as many primaries as the tier is contracted to
    survive: every replicated container, but per erasure stripe only as
    many members as parity can absorb — counting, when ``dark_domain``
    will also go dark, the shards that outage already takes."""
    durability = store.storage.durability
    policy = durability.policy
    spent: dict[int, int] = {}
    rotted = []

    def stripe_budget(sid: int) -> int:
        stripe = durability._stripes[sid]
        dark = 0
        if dark_domain is not None:
            dark += sum(
                1
                for member in stripe["members"]
                if policy.primary_domain(int(member["cid"])) == dark_domain
            )
            dark += sum(1 for p in stripe["parity"] if p["domain"] == dark_domain)
        return policy.parity_shards - dark

    for cid in sorted(store.storage.containers.container_ids()):
        record = durability.record_for(cid)
        if record is None:
            continue
        if record["class"] == CLASS_REPLICATED:
            rotted.append(cid)
        elif record.get("stripe") is not None:
            if dark_domain is not None and policy.primary_domain(cid) == dark_domain:
                continue  # the outage already takes this shard; rot adds nothing
            sid = int(record["stripe"])
            if spent.get(sid, 0) < stripe_budget(sid):
                spent[sid] = spent.get(sid, 0) + 1
                rotted.append(cid)
    for cid in rotted:
        flip_primary_byte(store, cid)
    return rotted


class TestBitRotHealing:
    def test_restore_heals_rotted_chunks_and_charges_for_it(self):
        store, chain = aged_durable_store(seed=555)
        assert rot_within_fault_model(store)
        before = store.oss.clock.now
        for version, payload in enumerate(chain):
            result = store.restore("f", version)
            assert result.data == payload
        # The mismatched chunks were re-fetched from the tier, and the
        # degraded reads were charged to the virtual cost model.
        assert result.degraded_chunk_reads > 0
        assert store.oss.clock.now > before

    def test_repairing_scrub_quarantines_nothing(self):
        store, chain = aged_durable_store(seed=556)
        assert rot_within_fault_model(store)
        report = store.scrub(repair=True)
        assert report.corrupt_chunks  # the rot was really there
        assert not report.quarantined_chunks
        assert report.fully_repaired
        # Healing rewrote the containers; everything restores clean.
        for version, payload in enumerate(chain):
            assert store.restore("f", version).data == payload
        assert store.scrub().clean


#: The two seeded chaos profiles the CI chaos-durability job sweeps:
#: a flaky network (transient errors + torn writes + latency spikes) and
#: a quieter schedule that leans on the domain outage + bit rot instead.
CHAOS_PROFILES = [
    (
        "flaky-net",
        dict(
            seed=2026,
            get_error_rate=0.05,
            put_error_rate=0.05,
            torn_write_rate=0.03,
            latency_spike_rate=0.02,
            latency_spike_seconds=0.1,
        ),
    ),
    ("calm-then-dark", dict(seed=2027, get_error_rate=0.02, put_error_rate=0.02)),
]


class TestSeededChaosDurability:
    @pytest.mark.parametrize("name,rates", CHAOS_PROFILES, ids=[n for n, _ in CHAOS_PROFILES])
    def test_chaos_backup_outage_rot_restore_scrub(self, name, rates):
        """Full cycle under a seeded chaos profile: back up through the
        fault schedule, rot primaries within the fault model, darken a
        domain — every version restores and scrub quarantines nothing."""
        from tests.conftest import make_chaos_store

        store, faults = make_chaos_store(config=DURABLE_CONFIG, fault_domains=3, **rates)
        rng = np.random.default_rng(rates["seed"])
        chain = make_version_chain(rng, versions=4)
        for payload in chain:
            store.backup("f", payload)
        # Rot at rest with the fault schedule lifted (the rot helper is
        # test machinery, not a client that should absorb faults).
        store.oss.set_fault_policy(None)
        assert rot_within_fault_model(store, dark_domain=1)
        store.oss.set_fault_policy(faults)
        faults.outage({"get", "head"}, domain=1)
        for version, payload in enumerate(chain):
            assert store.restore("f", version).data == payload
        durability = store.storage.durability
        assert durability.replica_failovers + durability.erasure_decodes > 0
        faults.revive(domain=1)
        report = store.scrub(repair=True)
        assert not report.quarantined_chunks
        assert report.clean or report.fully_repaired


@pytest.mark.slow
class TestDurabilityCrashMatrix:
    """Kill the node at every write of a tier-churning backup."""

    @pytest.fixture(scope="class")
    def base(self):
        rng = np.random.default_rng(9173)
        store = attach(config=DURABLE_CONFIG)
        chain = make_version_chain(
            rng, versions=3, size=96 * 1024, runs=3, run_bytes=4 * 1024
        )
        for payload in chain[:2]:
            store.backup("f", payload)
        # The third backup pushes the shared containers to hot_refs:
        # its maintenance pass promotes erasure-coded containers to
        # replication, retiring stripes — the richest tier transition.
        return clone_state(store.oss), chain

    def test_matrix_over_promoting_backup(self, base):
        state, chain = base

        def action(store: SlimStore) -> None:
            store.backup("f", chain[2])

        def verify(survivor: SlimStore, crash_at: int) -> None:
            versions = survivor.versions("f")
            assert versions in ([0, 1], [0, 1, 2]), crash_at
            for version in versions:
                assert survivor.restore("f", version).data == chain[version]
            assert_zero_debris(survivor)
            durability = survivor.storage.durability
            # Atomic class visibility: never a divergent copy, and no
            # replica/parity byte outlives its references.
            audit = durability.audit(survivor.catalog.refcounts())
            assert not audit.divergent_copies, crash_at
            assert durability.collect_orphans() == [], crash_at

        total = run_matrix(state, action, verify, config=DURABLE_CONFIG)
        assert total > 0

    def test_matrix_attach_uses_durable_config(self, base):
        """The matrix's attach() must resolve the durability tier, or the
        verify above would be vacuous."""
        state, _ = base
        survivor = attach(state, config=DURABLE_CONFIG)
        assert survivor.storage.durability is not None
        assert survivor.storage.durability.classes()
