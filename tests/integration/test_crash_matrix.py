"""The crash matrix: kill the node at *every* OSS write, then recover.

The headline crash-consistency harness.  For each scenario it first runs
the job unimpeded against a probe store to count its OSS writes, then
replays the job from the identical base state once per write index with
``FaultPolicy.crash_after_writes(i)`` armed — the node dies exactly at
write *i* — reattaches a fresh store (running attach-time recovery) and
asserts the crash-consistency contract:

* every committed version restores byte-identically;
* no version is partially visible (catalog, recipe and similar index
  agree on exactly the committed set);
* zero orphaned bytes: every live container is referenced by a committed
  version, the journal is empty, no torn pairs survive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recovery import RecoveryManager
from repro.core.system import SlimStore
from repro.errors import SimulatedCrashError, VersionNotFoundError
from repro.oss.faults import FaultPolicy
from repro.oss.object_store import ObjectStorageService
from tests.conftest import SMALL_CONFIG, bucket_state, mutate, random_bytes

pytestmark = pytest.mark.slow

#: Deep-copy of every bucket (the fork point of the matrix).
clone_state = bucket_state


def attach(state: dict[str, dict[str, bytes]] | None = None,
           config=SMALL_CONFIG) -> SlimStore:
    """A fresh SlimStore over a fresh OSS seeded with ``state``."""
    oss = ObjectStorageService()
    store = SlimStore(config, oss)
    if state is not None:
        for bucket, objects in state.items():
            oss.create_bucket(bucket)
            oss._backend(bucket)._objects = dict(objects)
        store.recover()
    return store


def reattach(store: SlimStore) -> SlimStore:
    """Attach a new node to the (possibly crashed) store's OSS state."""
    store.oss.set_fault_policy(None)
    survivor = SlimStore(store.config, store.oss)
    survivor.recover()
    return survivor


def count_writes(base_state, action, config=SMALL_CONFIG) -> int:
    """Probe run: how many OSS writes does ``action`` perform?"""
    probe = attach(base_state, config)
    policy = FaultPolicy()
    probe.oss.set_fault_policy(policy)
    action(probe)
    probe.oss.set_fault_policy(None)
    return policy.writes_seen


def run_matrix(base_state, action, verify, config=SMALL_CONFIG) -> int:
    """Crash ``action`` at every write index; recover; verify. Returns N."""
    total_writes = count_writes(base_state, action, config)
    assert total_writes > 0
    for crash_at in range(total_writes):
        store = attach(base_state, config)
        policy = FaultPolicy()
        policy.crash_after_writes(crash_at)
        store.oss.set_fault_policy(policy)
        with pytest.raises(SimulatedCrashError):
            action(store)
        survivor = reattach(store)
        verify(survivor, crash_at)
    return total_writes


def assert_zero_debris(survivor: SlimStore) -> None:
    """Journal empty, no torn pairs, no orphaned bytes, index coherent."""
    inspection = RecoveryManager(survivor).inspect()
    assert inspection.clean, f"repository dirty after recovery: {inspection}"
    live = set(survivor.storage.containers.container_ids())
    referenced = survivor.catalog.live_container_ids()
    orphans = live - referenced
    assert not orphans, f"orphaned containers survived recovery: {orphans}"
    recovery = survivor.last_recovery
    if recovery is not None:
        assert not recovery.torn_damaged


def assert_exactly_visible(survivor: SlimStore, path: str,
                           versions: list[int]) -> None:
    """The committed version set is visible atomically everywhere."""
    assert survivor.versions(path) == versions
    latest = survivor.storage.similar_index.latest_version(path)
    assert latest == (versions[-1] if versions else None)
    next_version = (versions[-1] + 1) if versions else 0
    with pytest.raises(VersionNotFoundError):
        survivor.storage.recipes.get_recipe(path, next_version)


class TestBackupCrashMatrix:
    """Crash at every write of a full backup + reverse dedup + compaction."""

    @pytest.fixture(scope="class")
    def base(self):
        """Age a version chain until the *next* backup's maintenance pass
        provably compacts: the matrix then sweeps a backup whose write
        stream spans online dedup, the commit, reverse dedup and the
        full compaction schedule."""
        rng = np.random.default_rng(31337)
        store = attach()
        data = random_bytes(rng, 256 * 1024)
        store.backup("f", data)
        payloads = [data]
        for _ in range(12):
            data = mutate(rng, data, runs=4, run_bytes=16 * 1024)
            state = clone_state(store.oss)
            probe = attach(state)
            report = probe.backup("f", data)
            if report.compaction is not None and report.compaction.sparse_containers:
                return state, list(payloads), data
            store.backup("f", data)
            payloads.append(data)
        pytest.fail("version chain never aged into sparse compaction")

    def test_probe_run_exercises_compaction(self, base):
        base_state, _payloads, next_payload = base
        probe = attach(base_state)
        report = probe.backup("f", next_payload)
        assert report.compaction is not None
        assert report.compaction.sparse_containers
        assert report.compaction.chunks_moved > 0
        assert report.reverse_dedup is not None
        assert_zero_debris(probe)

    def test_crash_at_every_write_index(self, base):
        base_state, payloads, next_payload = base
        committed = list(range(len(payloads)))
        extended = committed + [len(payloads)]
        contents = payloads + [next_payload]

        def action(store: SlimStore) -> None:
            store.backup("f", next_payload)

        def verify(survivor: SlimStore, crash_at: int) -> None:
            versions = survivor.versions("f")
            assert versions in (committed, extended), (crash_at, versions)
            assert_exactly_visible(survivor, "f", versions)
            for version in versions:
                assert survivor.restore("f", version).data == contents[version], (
                    crash_at,
                    version,
                )
            assert_zero_debris(survivor)

        total = run_matrix(base_state, action, verify)
        # The matrix must be wide enough to cross the backup commit, the
        # reverse-dedup pass and the compaction schedule.
        assert total > 20


class TestDeleteCrashMatrix:
    """Crash at every write of a version deletion (sweep + journal)."""

    @pytest.fixture(scope="class")
    def base(self):
        rng = np.random.default_rng(24680)
        chain = [random_bytes(rng, 96 * 1024)]
        data = bytearray(chain[0])
        data[10_000:14_000] = random_bytes(rng, 4_000)
        chain.append(bytes(data))
        data = bytearray(chain[1])
        data[50_000:58_000] = random_bytes(rng, 8_000)
        chain.append(bytes(data))
        store = attach()
        for payload in chain:
            store.backup("f", payload)
        return clone_state(store.oss), chain

    def test_crash_at_every_write_index(self, base):
        base_state, chain = base

        def action(store: SlimStore) -> None:
            store.delete_version("f", 0)

        def verify(survivor: SlimStore, crash_at: int) -> None:
            versions = survivor.versions("f")
            assert versions in ([0, 1, 2], [1, 2]), (crash_at, versions)
            for version in versions:
                assert survivor.restore("f", version).data == chain[version]
            assert_zero_debris(survivor)
            # Whatever state the crash left, the delete (or its replay)
            # can proceed afterwards and the survivors stay intact.
            if versions == [0, 1, 2]:
                survivor.delete_version("f", 0)
            for version in (1, 2):
                assert survivor.restore("f", version).data == chain[version]

        run_matrix(base_state, action, verify)


class TestSnapshotCrashMatrix:
    """Crash at every write of a two-file snapshot run (gnode off: the
    maintenance writes have their own matrix above)."""

    @pytest.fixture(scope="class")
    def base(self):
        rng = np.random.default_rng(13579)
        files = {
            "vol/a": random_bytes(rng, 48 * 1024),
            "vol/b": random_bytes(rng, 48 * 1024),
        }
        store = attach()
        return clone_state(store.oss), files

    def test_crash_at_every_write_index(self, base):
        base_state, files = base

        def action(store: SlimStore) -> None:
            store.backup_snapshot(files, run_gnode=False)

        def verify(survivor: SlimStore, crash_at: int) -> None:
            for path, payload in files.items():
                versions = survivor.versions(path)
                assert versions in ([], [0]), (crash_at, path)
                assert_exactly_visible(survivor, path, versions)
                if versions:
                    assert survivor.restore(path, 0).data == payload
            # A published (possibly partial) manifest names only
            # committed, restorable members.
            published = set(survivor.snapshots.list_ids())
            for snapshot_id in published:
                snapshot = survivor.snapshots.get(snapshot_id)
                assert snapshot.members
                for path, version in snapshot.members.items():
                    assert version in survivor.versions(path)
                    assert survivor.restore(path, version).data == files[path]
            assert_zero_debris(survivor)
            # The snapshot id sequence never collides with a published
            # manifest (a crash before the journal entry landed may
            # recycle the dead run's id, which was never visible).
            follow_up, _ = survivor.backup_snapshot(
                {"vol/c": b"later run"}, run_gnode=False
            )
            assert follow_up not in published

        run_matrix(base_state, action, verify)
