"""Attach-after-crash recovery windows and the deletion grace epoch.

The crash matrix (``test_crash_matrix``) sweeps *every* write index; this
suite pins the interesting windows by name — uncommitted backup discard,
committed backup roll-forward, partial snapshot publish — and asserts
the recovery report labels them correctly.  It also covers the
two-phase-deletion grace epoch: a reader that planned a restore against
pre-maintenance metadata keeps reading entombed containers byte-for-byte
until the grace expires.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.system import SlimStore
from repro.errors import ObjectNotFoundError, SimulatedCrashError
from repro.oss.faults import FaultPolicy
from tests.conftest import SMALL_CONFIG, random_bytes
from tests.integration.test_crash_matrix import (
    attach,
    clone_state,
    count_writes,
    reattach,
)

DATA_KEY = "containers/{cid:012d}.data"
META_KEY = "containers/{cid:012d}.meta"


def crash_at(state, action, index: int) -> SlimStore:
    """Replay ``action`` from ``state``, crash at write ``index``, reattach."""
    store = attach(state)
    policy = FaultPolicy()
    policy.crash_after_writes(index)
    store.oss.set_fault_policy(policy)
    with pytest.raises(SimulatedCrashError):
        action(store)
    return reattach(store)


class TestBackupWindows:
    @pytest.fixture()
    def base(self, rng):
        d0 = random_bytes(rng, 96 * 1024)
        d1 = random_bytes(rng, 96 * 1024)
        store = attach()
        store.backup("f", d0, run_gnode=False)
        return clone_state(store.oss), d0, d1

    @staticmethod
    def _backup(d1):
        return lambda store: store.backup("f", d1, run_gnode=False)

    def test_crash_before_first_write_leaves_repository_clean(self, base):
        state, d0, d1 = base
        survivor = crash_at(state, self._backup(d1), 0)
        # Write 0 is the journal begin itself: nothing landed, so the
        # reattach finds no evidence and runs no recovery at all.
        assert survivor.last_recovery is None
        assert survivor.versions("f") == [0]
        assert survivor.restore("f", 0).data == d0

    def test_uncommitted_backup_is_discarded(self, base):
        state, d0, d1 = base
        action = self._backup(d1)
        total = count_writes(state, action)
        # Crash at the catalog put (second-to-last write): the recipe and
        # similar-index registration landed but the commit did not, so
        # recovery must unwind them and discard the version.
        survivor = crash_at(state, action, total - 2)
        recovery = survivor.last_recovery
        assert recovery is not None
        assert any(k == "backup" for _s, k in recovery.discarded)
        assert not any(k == "backup" for _s, k in recovery.rolled_forward)
        assert survivor.versions("f") == [0]
        assert survivor.restore("f", 0).data == d0
        # The discarded attempt's containers were orphan-collected.
        live = set(survivor.storage.containers.container_ids())
        assert live <= survivor.catalog.live_container_ids()

    def test_version_sequence_continues_after_discard(self, base):
        state, d0, d1 = base
        survivor = crash_at(state, self._backup(d1), 2)
        report = survivor.backup("f", d1, run_gnode=False)
        assert report.version == 1
        assert survivor.versions("f") == [0, 1]
        assert survivor.restore("f", 0).data == d0
        assert survivor.restore("f", 1).data == d1

    def test_committed_backup_missing_only_close_rolls_forward(self, base):
        state, d0, d1 = base
        action = self._backup(d1)
        total = count_writes(state, action)
        # The very last write of an un-maintained backup is the journal
        # close (deletes count as writes): crashing there leaves a fully
        # committed version with only its intent outstanding.
        survivor = crash_at(state, action, total - 1)
        recovery = survivor.last_recovery
        assert recovery is not None
        assert any(k == "backup" for _s, k in recovery.rolled_forward)
        assert not any(k == "backup" for _s, k in recovery.discarded)
        assert survivor.versions("f") == [0, 1]
        assert survivor.restore("f", 1).data == d1


class TestSnapshotPartialPublish:
    def test_partial_manifest_covers_exactly_the_committed_members(self, rng):
        files = {
            "vol/a": random_bytes(rng, 48 * 1024),
            "vol/b": random_bytes(rng, 48 * 1024),
        }
        store = attach()
        state = clone_state(store.oss)

        def action(s: SlimStore) -> None:
            s.backup_snapshot(files, run_gnode=False)

        total = count_writes(state, action)
        found_partial = False
        for index in range(1, total):
            survivor = crash_at(state, action, index)
            a_done = survivor.versions("vol/a") == [0]
            b_done = survivor.versions("vol/b") == [0]
            if not (a_done and not b_done):
                continue
            # vol/a committed but vol/b did not.  Two correct outcomes:
            # the intent had recorded vol/a (the journal update landed)
            # and recovery published a partial manifest naming it alone,
            # or the crash beat the journal update and no manifest exists
            # (the committed member simply belongs to no snapshot).
            ids = survivor.snapshots.list_ids()
            if not ids:
                continue
            found_partial = True
            assert len(ids) == 1
            snapshot = survivor.snapshots.get(ids[0])
            assert snapshot.members == {"vol/a": 0}
            assert survivor.restore_snapshot(ids[0]) == {"vol/a": files["vol/a"]}
            break
        assert found_partial, "no crash index hit the partial-publish window"


class TestScrubReportsTornDamage:
    def test_referenced_torn_pair_survives_recovery_and_fails_scrub(self, rng):
        """Losing the meta of a referenced container is data loss the
        journal cannot explain: recovery quarantines it (never deletes),
        and scrub — whose container pass cannot even see the quarantined
        id — reports it explicitly."""
        store = attach()
        store.backup("f", random_bytes(rng, 64 * 1024), run_gnode=False)
        cid = min(store.storage.recipes.get_recipe("f", 0).referenced_containers())
        store.oss.delete_object("slimstore", META_KEY.format(cid=cid))

        survivor = SlimStore(SMALL_CONFIG, store.oss)
        survivor.recover()
        assert survivor.last_recovery is not None
        assert cid in survivor.last_recovery.torn_damaged

        report = survivor.scrub()
        assert report.torn_containers == [cid]
        assert not report.clean
        # The data object was NOT garbage-collected: scrub territory.
        assert (
            survivor.oss.peek_size("slimstore", DATA_KEY.format(cid=cid))
            is not None
        )


GRACE_CONFIG = replace(SMALL_CONFIG, tombstone_grace_epochs=1)


class TestDeletionGraceEpoch:
    """A stale reader keeps its planned reads for a full grace epoch."""

    def _two_distinct_versions(self, rng, config):
        writer = attach(config=config)
        d0 = random_bytes(rng, 96 * 1024)
        d1 = random_bytes(rng, 96 * 1024)
        writer.backup("f", d0, run_gnode=False)
        writer.backup("f", d1, run_gnode=False)
        return writer, d0

    def _plan_reads(self, reader: SlimStore, path: str, version: int):
        """Resolve version's bytes to (cid, offset, size) the way a
        restore planner does — against the reader's current metadata."""
        recipe = reader.storage.recipes.get_recipe(path, version)
        plan = []
        for record in recipe.all_records():
            meta = reader.storage.containers.read_meta(record.container_id)
            entry = meta.find(record.fp)
            assert entry is not None
            plan.append((record.container_id, entry.offset, entry.size))
        return plan

    def _read_back(self, reader: SlimStore, plan) -> bytes:
        out = bytearray()
        for cid, offset, size in plan:
            data = reader.oss.get_object("slimstore", DATA_KEY.format(cid=cid))
            out += data[offset : offset + size]
        return bytes(out)

    def test_stale_reader_survives_version_delete_within_grace(self, rng):
        writer, d0 = self._two_distinct_versions(rng, GRACE_CONFIG)
        reader = SlimStore(GRACE_CONFIG, writer.oss)
        reader.recover()
        plan = self._plan_reads(reader, "f", 0)
        cids = sorted({cid for cid, _o, _s in plan})

        writer.delete_version("f", 0)
        # v0's exclusive containers are entombed, not deleted...
        assert set(writer.storage.containers.tombstoned_ids()) >= set(cids)
        # ...so the reader's in-flight restore completes byte-identically.
        assert self._read_back(reader, plan) == d0

        # The tombstones survive exactly one deep_clean (grace epoch)...
        writer.gnode.deep_clean()
        assert self._read_back(reader, plan) == d0
        # ...and the next sweep reaps the bytes for real.
        writer.gnode.deep_clean()
        with pytest.raises(ObjectNotFoundError):
            self._read_back(reader, plan)
        assert writer.storage.containers.tombstoned_ids() == []

    def test_grace_zero_deletes_out_from_under_the_reader(self, rng):
        writer, _d0 = self._two_distinct_versions(rng, SMALL_CONFIG)
        reader = SlimStore(SMALL_CONFIG, writer.oss)
        reader.recover()
        plan = self._plan_reads(reader, "f", 0)

        writer.delete_version("f", 0)
        # The seed behaviour (grace 0): the planned reads break mid-restore.
        with pytest.raises(ObjectNotFoundError):
            self._read_back(reader, plan)

    def test_tombstones_survive_reattach(self, rng):
        writer, d0 = self._two_distinct_versions(rng, GRACE_CONFIG)
        reader = SlimStore(GRACE_CONFIG, writer.oss)
        reader.recover()
        plan = self._plan_reads(reader, "f", 0)
        writer.delete_version("f", 0)
        tombstoned = writer.storage.containers.tombstoned_ids()
        assert tombstoned

        # A freshly attached node sees the same grace bookkeeping and
        # recovery does NOT treat in-grace containers as debris.
        fresh = SlimStore(GRACE_CONFIG, writer.oss)
        fresh.recover()
        assert fresh.storage.containers.tombstoned_ids() == tombstoned
        assert fresh.last_recovery is None
        assert self._read_back(fresh, plan) == d0
