"""Differential parity for browse: every ranged read must be
byte-identical to the corresponding slice of a full restore, across an
aged multi-version chain, and a committed write-back's full restore must
equal the in-cache view.  Also covers the fsck cross-checks for browse
staging debris and stale ``cache_flush`` intents."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import SlimStore
from repro.core.browse import STAGE_PREFIX, BrowseSession
from repro.core.recovery import RecoveryManager
from tests.conftest import SMALL_CONFIG, make_version_chain, random_bytes

#: Aged-store geometry with browse blocks small enough that single reads
#: span block boundaries, a memory tier smaller than the file (so the
#: disk tier and demotions are exercised), and both tiers together large
#: enough that a fully-warmed file stays resident.
BROWSE_CONFIG = replace(
    SMALL_CONFIG,
    browse_block_bytes=8 * 1024,
    browse_cache_memory_bytes=128 * 1024,
    browse_cache_disk_bytes=256 * 1024,
    browse_readahead_blocks=2,
)


@pytest.fixture(scope="module")
def aged():
    """A six-version aged chain (merging/compaction/reverse dedup ran)."""
    rng = np.random.default_rng(90210)
    store = SlimStore(BROWSE_CONFIG)
    payloads = make_version_chain(rng)
    for payload in payloads:
        store.backup("vol/f.bin", payload)
    return store, payloads


class TestReadParity:
    def test_random_slices_match_full_restore(self, aged):
        store, payloads = aged
        session = BrowseSession(store)
        rng = np.random.default_rng(4242)
        for version, payload in enumerate(payloads):
            restored = store.restore("vol/f.bin", version).data
            assert restored == payload  # the oracle itself
            handle = session.open("vol/f.bin", version)
            assert handle.size == len(payload)
            for _ in range(12):
                offset = int(rng.integers(0, len(payload)))
                length = int(rng.integers(1, 40_000))
                assert (
                    handle.read(offset, length)
                    == restored[offset : offset + length]
                ), (version, offset, length)

    def test_full_read_matches_every_version(self, aged):
        store, payloads = aged
        session = BrowseSession(store)
        for version, payload in enumerate(payloads):
            handle = session.open("vol/f.bin", version)
            assert handle.read(0, handle.size) == payload

    def test_warm_reads_issue_zero_oss_gets(self, aged):
        store, payloads = aged
        session = BrowseSession(store)
        handle = session.open("vol/f.bin")
        handle.read(0, handle.size)
        rng = np.random.default_rng(777)
        before = store.oss.stats.get_requests
        for _ in range(20):
            offset = int(rng.integers(0, handle.size))
            handle.read(offset, int(rng.integers(1, 16_000)))
        assert store.oss.stats.get_requests == before

    def test_cold_read_amplification_below_whole_version(self, aged):
        store, payloads = aged
        session = BrowseSession(store)
        handle = session.open("vol/f.bin", 2)
        before = store.oss.stats.bytes_read
        handle.read(1_000, 2_000)
        cold_bytes = store.oss.stats.bytes_read - before
        assert 0 < cold_bytes < len(payloads[2])


class TestWriteBackParity:
    def test_committed_write_back_restores_to_in_cache_view(self, aged):
        store, payloads = aged
        session = BrowseSession(store)
        rng = np.random.default_rng(1717)
        handle = session.open("vol/f.bin")
        base_version = handle.version
        for _ in range(5):
            offset = int(rng.integers(0, handle.size - 4_000))
            handle.write(offset, random_bytes(rng, 4_000))
        handle.write(handle.size + 2_000, b"appended past a hole")
        in_cache = handle.read(0, handle.size)
        report = handle.flush()
        assert report.version == base_version + 1
        assert store.restore("vol/f.bin").data == in_cache
        # And the browse view of the published version agrees too.
        fresh = BrowseSession(store).open("vol/f.bin")
        assert fresh.read(0, fresh.size) == in_cache

    def test_flush_leaves_no_staging_and_journal_empty(self, aged):
        store, _ = aged
        session = BrowseSession(store)
        handle = session.open("vol/f.bin")
        handle.write(123, b"one more edit")
        handle.flush()
        assert not store.oss.peek_keys(store.bucket, STAGE_PREFIX)
        assert RecoveryManager(store).inspect().clean


class TestFsckCacheChecks:
    @pytest.fixture
    def store(self, rng):
        store = SlimStore(BROWSE_CONFIG)
        store.backup("f", random_bytes(rng, 50_000))
        return store

    def test_orphaned_staging_bytes_are_flagged_and_reaped(self, store):
        store.oss.put_object(store.bucket, "browsecache/000000000042/00000000",
                             b"orphaned staging bytes")
        manager = RecoveryManager(store)
        report = manager.inspect()
        assert not report.clean
        assert report.cache_debris == ["browsecache/000000000042/00000000"]
        recovery = manager.run(report.open_intents)
        assert recovery.cache_staging_reaped == [
            "browsecache/000000000042/00000000"
        ]
        after = manager.inspect()
        assert after.clean and not after.cache_debris

    def test_stale_cache_flush_intent_is_flagged_and_discarded(self, store):
        seq = store.storage.journal.begin(
            "cache_flush", staged=False, path="f", base_version=0, version=1,
            size=50_000, sha="0" * 64, blocks=[0], block_bytes=8 * 1024,
        )
        manager = RecoveryManager(store)
        report = manager.inspect()
        assert seq in report.stale_cache_intents
        recovery = manager.run(report.open_intents)
        assert (seq, "cache_flush") in recovery.discarded
        assert store.versions("f") == [0]  # nothing became visible
        assert manager.inspect().clean

    def test_staging_of_an_open_intent_is_not_debris(self, store):
        seq = store.storage.journal.begin(
            "cache_flush", staged=False, path="f", base_version=0, version=1,
            size=50_000, sha="0" * 64, blocks=[0], block_bytes=8 * 1024,
        )
        key = f"browsecache/{seq:012d}/00000000"
        store.oss.put_object(store.bucket, key, b"in-flight staging")
        report = RecoveryManager(store).inspect()
        # The in-flight flush owns its staging: stale intent, not debris.
        assert report.cache_debris == []
        assert seq in report.stale_cache_intents
