"""Crash matrix for the write-back flush: kill the node at every OSS
write of a browse edit + flush, recover, and assert visible-or-nothing.

The flush state machine under test (see :mod:`repro.core.browse`): the
``cache_flush`` intent lands first, dirty blocks stage under
``browsecache/{seq}/``, the intent is marked ``staged=True``, then the
normal backup pipeline publishes the new version.  The contract after a
crash anywhere in that stream:

* the file is at exactly the base version set or base + the new version
  — never a torn mix;
* once staging completed, recovery **rolls the upload forward** from the
  staged blocks, so the acknowledged flush is not lost;
* zero orphaned cache bytes: no ``browsecache/`` key survives recovery.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.browse import STAGE_PREFIX, BrowseSession
from repro.core.system import SlimStore
from tests.conftest import SMALL_CONFIG, random_bytes
from tests.integration.test_crash_matrix import (
    assert_exactly_visible,
    assert_zero_debris,
    attach,
    clone_state,
    run_matrix,
)

pytestmark = pytest.mark.slow

BROWSE_CONFIG = replace(
    SMALL_CONFIG,
    browse_block_bytes=8 * 1024,
    browse_cache_memory_bytes=64 * 1024,
    browse_cache_disk_bytes=128 * 1024,
    browse_readahead_blocks=1,
)


def assert_no_cache_bytes(survivor: SlimStore) -> None:
    """No staged browse block survives recovery."""
    leftovers = survivor.oss.peek_keys(survivor.bucket, STAGE_PREFIX)
    assert not leftovers, f"orphaned cache bytes: {leftovers}"


class TestBrowseFlushCrashMatrix:
    @pytest.fixture(scope="class")
    def base(self):
        rng = np.random.default_rng(60606)
        store = attach(config=BROWSE_CONFIG)
        payloads = [random_bytes(rng, 96 * 1024)]
        edited = bytearray(payloads[0])
        edited[30_000:34_000] = random_bytes(rng, 4_000)
        edited.extend(b"tail growth")
        payloads.append(bytes(edited))
        store.backup("f", payloads[0])
        return clone_state(store.oss), payloads

    def test_crash_at_every_write_index(self, base):
        base_state, payloads = base
        patch = payloads[1][30_000:34_000]

        def action(store: SlimStore) -> None:
            session = BrowseSession(store)
            handle = session.open("f")
            handle.write(30_000, patch)
            handle.write(len(payloads[0]), b"tail growth")
            handle.flush()

        def verify(survivor: SlimStore, crash_at: int) -> None:
            versions = survivor.versions("f")
            assert versions in ([0], [0, 1]), (crash_at, versions)
            assert_exactly_visible(survivor, "f", versions)
            for version in versions:
                assert survivor.restore("f", version).data == payloads[version], (
                    crash_at,
                    version,
                )
            assert_zero_debris(survivor)
            assert_no_cache_bytes(survivor)

        total = run_matrix(base_state, action, verify, config=BROWSE_CONFIG)
        # Wide enough to cross staging, the staged=True update and the
        # nested backup commit — i.e. both discard and roll-forward arms.
        assert total > 6

    def test_roll_forward_from_staged_blocks(self, base):
        """A crash *after* staging completed but *before* the backup's
        catalog put must still publish the flush (upload rolled forward)."""
        base_state, payloads = base
        patch = payloads[1][30_000:34_000]

        seen_rolled_forward = []

        def action(store: SlimStore) -> None:
            session = BrowseSession(store)
            handle = session.open("f")
            handle.write(30_000, patch)
            handle.write(len(payloads[0]), b"tail growth")
            handle.flush()

        def verify(survivor: SlimStore, crash_at: int) -> None:
            if survivor.versions("f") == [0, 1]:
                recovery = survivor.last_recovery
                if recovery is not None and any(
                    kind == "cache_flush" for _, kind in recovery.rolled_forward
                ):
                    seen_rolled_forward.append(crash_at)
                assert survivor.restore("f", 1).data == payloads[1]

        run_matrix(base_state, action, verify, config=BROWSE_CONFIG)
        # The matrix must have hit the staged-but-uncommitted window.
        assert seen_rolled_forward
