"""Durable repositories: recovery after process restart and the CLI."""

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.cli import main, open_repository
from repro.core.system import VersionCatalog
from repro.oss.backend import FilesystemBackend
from repro.oss.object_store import ObjectStorageService
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


def durable_store(root) -> SlimStore:
    oss = ObjectStorageService(
        backend_factory=lambda bucket: FilesystemBackend(root / bucket)
    )
    store = SlimStore(CONFIG, oss)
    store.recover()
    return store


class TestCatalogSerialisation:
    def test_roundtrip(self):
        catalog = VersionCatalog()
        catalog.register("f", 0, {1, 2})
        catalog.register("f", 1, {2, 3})
        catalog.add_garbage("f", 0, [9])
        restored = VersionCatalog.from_json(catalog.to_json())
        assert restored.versions("f") == [0, 1]
        assert set(restored.drop_version("f", 0)) == {1, 9}

    def test_refcounts_rederived(self):
        catalog = VersionCatalog()
        catalog.register("a", 0, {7})
        catalog.register("b", 0, {7})
        restored = VersionCatalog.from_json(catalog.to_json())
        assert restored.drop_version("a", 0) == []
        assert restored.drop_version("b", 0) == [7]


class TestDurableRepository:
    def test_reattach_deduplicates_and_restores(self, tmp_path, rng):
        data = random_bytes(rng, 256 * 1024)
        first = durable_store(tmp_path)
        first.backup("f", data)

        # A brand-new process: everything rebuilt from disk.
        second = durable_store(tmp_path)
        assert second.versions("f") == [0]
        changed = mutate(rng, data, 2, 8192)
        report = second.backup("f", changed)
        assert report.version == 1
        assert report.dedup_ratio > 0.85
        assert second.restore("f", 0).data == data
        assert second.restore("f", 1).data == changed

    def test_reattach_preserves_container_id_space(self, tmp_path, rng):
        first = durable_store(tmp_path)
        report = first.backup("f", random_bytes(rng, 128 * 1024))
        highest = max(report.result.new_container_ids)
        second = durable_store(tmp_path)
        next_report = second.backup("g", random_bytes(rng, 64 * 1024))
        assert min(next_report.result.new_container_ids) > highest

    def test_reattach_recovers_global_index(self, tmp_path, rng):
        data = random_bytes(rng, 128 * 1024)
        first = durable_store(tmp_path)
        report = first.backup("f", data)
        meta = first.storage.containers.read_meta(report.result.new_container_ids[0])
        probe = meta.live_entries()[0].fp

        second = durable_store(tmp_path)
        assert second.storage.global_index.lookup(probe) is not None
        assert second.storage.global_index.maybe_contains(probe)

    def test_recover_on_empty_repo(self, tmp_path):
        store = durable_store(tmp_path)
        assert store.versions("anything") == []

    def test_delete_survives_reattach(self, tmp_path, rng):
        data = random_bytes(rng, 128 * 1024)
        first = durable_store(tmp_path)
        first.backup("f", data)
        first.backup("f", mutate(rng, data, 1, 4096))
        first.delete_version("f", 0)
        second = durable_store(tmp_path)
        assert second.versions("f") == [1]


class TestCLI:
    @pytest.fixture
    def sample_file(self, tmp_path, rng):
        path = tmp_path / "sample.bin"
        path.write_bytes(random_bytes(rng, 200 * 1024))
        return path

    def test_backup_restore_cycle(self, tmp_path, sample_file, capsys):
        repo = tmp_path / "repo"
        assert main(["backup", str(repo), str(sample_file), "--prefix", "data/"]) == 0
        out = tmp_path / "restored.bin"
        assert main([
            "restore", str(repo), "data/sample.bin", "--output", str(out)
        ]) == 0
        assert out.read_bytes() == sample_file.read_bytes()
        stdout = capsys.readouterr().out
        assert "v0" in stdout

    def test_versions_and_space(self, tmp_path, sample_file, capsys):
        repo = tmp_path / "repo"
        main(["backup", str(repo), str(sample_file)])
        assert main(["versions", str(repo)]) == 0
        assert main(["space", str(repo)]) == 0
        stdout = capsys.readouterr().out
        assert "versions 0" in stdout
        assert "total:" in stdout

    def test_delete_command(self, tmp_path, sample_file, capsys, rng):
        repo = tmp_path / "repo"
        main(["backup", str(repo), str(sample_file), "--prefix", "d/"])
        sample_file.write_bytes(random_bytes(rng, 210 * 1024))
        main(["backup", str(repo), str(sample_file), "--prefix", "d/"])
        assert main(["delete", str(repo), "d/sample.bin", "0"]) == 0
        main(["versions", str(repo)])
        assert "versions 1" in capsys.readouterr().out

    def test_backup_missing_file_errors(self, tmp_path, capsys):
        repo = tmp_path / "repo"
        assert main(["backup", str(repo), str(tmp_path / "ghost")]) == 2
        assert "not a file" in capsys.readouterr().err

    def test_restore_unknown_path_exits_cleanly(self, tmp_path, capsys):
        repo = tmp_path / "repo"
        assert main(["restore", str(repo), "never/backed/up"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_delete_wrong_order_exits_cleanly(self, tmp_path, sample_file, capsys):
        repo = tmp_path / "repo"
        main(["backup", str(repo), str(sample_file), "--prefix", "d/"])
        main(["backup", str(repo), str(sample_file), "--prefix", "d/"])
        assert main(["delete", str(repo), "d/sample.bin", "1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_open_repository_idempotent(self, tmp_path, sample_file):
        repo = tmp_path / "repo"
        store = open_repository(repo)
        store.backup("f", sample_file.read_bytes())
        again = open_repository(repo)
        assert again.versions("f") == [0]
