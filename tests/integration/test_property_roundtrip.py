"""Property-based integration: arbitrary version streams restore exactly."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SlimStore, SlimStoreConfig
from tests.conftest import random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    min_superchunk_bytes=8 * 1024,
    max_superchunk_bytes=32 * 1024,
    merge_threshold=2,
)


@st.composite
def version_streams(draw):
    """A random sequence of edits applied to a random base file."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    size = draw(st.integers(min_value=0, max_value=160 * 1024))
    base = random_bytes(rng, size)
    versions = [base]
    edit_count = draw(st.integers(min_value=0, max_value=4))
    for _ in range(edit_count):
        previous = bytearray(versions[-1])
        operation = draw(st.sampled_from(["overwrite", "insert", "delete", "append"]))
        if not previous and operation in ("overwrite", "delete"):
            operation = "append"
        if operation == "overwrite":
            start = draw(st.integers(0, max(0, len(previous) - 1)))
            length = draw(st.integers(1, 8 * 1024))
            previous[start : start + length] = random_bytes(rng, length)
        elif operation == "insert":
            start = draw(st.integers(0, len(previous)))
            previous[start:start] = random_bytes(rng, draw(st.integers(1, 8 * 1024)))
        elif operation == "delete":
            start = draw(st.integers(0, max(0, len(previous) - 1)))
            length = draw(st.integers(1, 8 * 1024))
            del previous[start : start + length]
        else:
            previous += random_bytes(rng, draw(st.integers(1, 8 * 1024)))
        versions.append(bytes(previous))
    return versions


@given(version_streams())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_any_version_stream_restores_byte_exact(versions):
    """Whatever sequence of edits a user makes, every version restores."""
    store = SlimStore(CONFIG)
    for data in versions:
        store.backup("file", data)
    for version, data in enumerate(versions):
        assert store.restore("file", version).data == data


@given(version_streams())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_space_never_exceeds_logical_plus_overhead(versions):
    """Stored chunk bytes never exceed the logical total (dedup >= 0),
    modulo the transient superchunk duplication bounded by one extra
    copy of the data."""
    store = SlimStore(CONFIG)
    for data in versions:
        store.backup("file", data)
    logical = sum(len(data) for data in versions)
    stored = store.space_report().container_bytes
    assert stored <= max(logical, 1) * 2
