"""Differential suite: the pipelined ingest path changes time, not bytes.

The segment-parallel pipeline re-times a backup job — it must never
re-order or re-shape what lands on OSS.  Every test here runs the same
seeded workload through a serial store and a pipelined store and asserts
the *entire* repository state (every object in every bucket) is
byte-identical, across pipeline settings, fault profiles and crash
points.  The pipeline's batched index probes are modeled, never issued,
which is exactly why parity holds even when a seeded
:class:`~repro.oss.faults.FaultPolicy` burns one RNG draw per real OSS
request (see ``docs/INGEST.md``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.system import SlimStore
from repro.errors import SimulatedCrashError
from repro.oss.faults import FaultPolicy
from tests.conftest import (
    SMALL_CONFIG,
    make_chaos_store,
    make_version_chain,
    random_bytes,
)
from tests.integration.test_crash_matrix import (
    assert_exactly_visible,
    assert_zero_debris,
    attach,
    clone_state,
    reattach,
)

PATH = "db/accounts.tbl"

#: Knob grid: strictly serial alternation, chunk look-ahead only, and the
#: full double-buffered configuration.
KNOBS = [(0, 0), (1, 0), (3, 2)]


def pipelined_config(ingest_segments: int, flush_buffers: int):
    return SMALL_CONFIG.with_overrides(
        ingest_pipeline=True,
        ingest_segments=ingest_segments,
        flush_buffers=flush_buffers,
    )


def run_chain(config, chain: list[bytes]) -> tuple[SlimStore, list]:
    store = SlimStore(config)
    reports = [store.backup(PATH, data) for data in chain]
    return store, reports


class TestByteIdenticalRepositories:
    @pytest.mark.parametrize("seed", [7, 2026])
    @pytest.mark.parametrize("knobs", KNOBS, ids=lambda k: f"ahead{k[0]}-buf{k[1]}")
    def test_full_bucket_parity_across_knobs(self, seed, knobs):
        chain = make_version_chain(
            np.random.default_rng(seed), versions=3, size=160 * 1024
        )
        serial_store, serial_reports = run_chain(SMALL_CONFIG, chain)
        piped_store, piped_reports = run_chain(pipelined_config(*knobs), chain)

        assert clone_state(piped_store.oss) == clone_state(serial_store.oss)
        for serial, piped in zip(serial_reports, piped_reports):
            assert serial.pipeline is None
            assert piped.pipeline is not None
            assert piped.pipeline.elapsed_seconds > 0
            assert piped.result.dedup_ratio == serial.result.dedup_ratio

    def test_restores_identical_bytes(self):
        chain = make_version_chain(
            np.random.default_rng(99), versions=3, size=160 * 1024
        )
        serial_store, _ = run_chain(SMALL_CONFIG, chain)
        piped_store, _ = run_chain(pipelined_config(3, 2), chain)
        for version, data in enumerate(chain):
            assert piped_store.restore(PATH, version).data == data
            assert serial_store.restore(PATH, version).data == data

    def test_pipeline_counters_only_on_pipelined_path(self):
        # Two files sharing a middle block: the shared chunks are not in
        # the second job's local history, so they survive the Bloom
        # prefilter and become batched (modeled) index round trips.
        rng = np.random.default_rng(5)
        shared = random_bytes(rng, 32 * 1024)
        first = random_bytes(rng, 64 * 1024) + shared + random_bytes(rng, 64 * 1024)
        second = random_bytes(rng, 80 * 1024) + shared + random_bytes(rng, 48 * 1024)

        def run(config):
            store = SlimStore(config)
            store.backup("db/one.bin", first)
            return store, store.backup("db/two.bin", second).result

        serial_store, serial_result = run(SMALL_CONFIG)
        piped_store, piped_result = run(pipelined_config(2, 1))
        assert serial_result.counters.get("ingest_bloom_probes") == 0
        assert serial_result.counters.get("ingest_index_batches") == 0
        assert piped_result.counters.get("ingest_bloom_probes") > 0
        assert piped_result.counters.get("ingest_index_batches") > 0
        assert piped_result.counters.get("ingest_index_keys") > 0
        # The modeled round trips never became real index traffic.
        assert clone_state(piped_store.oss) == clone_state(serial_store.oss)

    def test_intra_file_memo_absorbs_repeated_chunks(self):
        # A file of repeated blocks re-emits the same fingerprints; the
        # per-job memo absorbs the repeat probes (serial path: no memo).
        rng = np.random.default_rng(17)
        data = random_bytes(rng, 48 * 1024) * 5

        serial_store = SlimStore(SMALL_CONFIG)
        serial = serial_store.backup("db/rep.bin", data).result
        piped_store = SlimStore(pipelined_config(2, 1))
        piped = piped_store.backup("db/rep.bin", data).result
        assert serial.intra_file_dup_hits == 0
        assert piped.intra_file_dup_hits > 0
        assert piped.dedup_ratio == serial.dedup_ratio
        assert clone_state(piped_store.oss) == clone_state(serial_store.oss)


class TestParityUnderFaults:
    @pytest.mark.parametrize("fault_seed", [11, 4242])
    def test_chaos_profile_same_seed_same_bytes(self, fault_seed):
        """Seeded faults draw per real request — parity must survive them."""
        rates = dict(
            get_error_rate=0.04,
            put_error_rate=0.04,
            torn_write_rate=0.03,
        )
        chain = make_version_chain(
            np.random.default_rng(fault_seed), versions=3, size=160 * 1024
        )

        serial_store, _ = make_chaos_store(seed=fault_seed, **rates)
        for data in chain:
            serial_store.backup(PATH, data)

        piped_store, _ = make_chaos_store(
            seed=fault_seed, config=pipelined_config(2, 1), **rates
        )
        for data in chain:
            piped_store.backup(PATH, data)

        assert clone_state(piped_store.oss) == clone_state(serial_store.oss)
        assert piped_store.restore(PATH).data == chain[-1]


@pytest.mark.slow
class TestPipelinedCrashMatrix:
    """Crash a pipelined backup at every write index; recovery stays exact.

    Reuses the crash-matrix harness with the pipeline switched on: the
    write schedule is identical to the serial path's, so the matrix has
    the same width, and every crash point recovers to zero debris with
    only the committed version visible.
    """

    CONFIG = pipelined_config(2, 1)

    @pytest.fixture(scope="class")
    def base(self):
        rng = np.random.default_rng(77)
        chain = make_version_chain(rng, versions=2, size=96 * 1024)
        store = attach(config=self.CONFIG)
        store.backup(PATH, chain[0])
        return clone_state(store.oss), chain[1]

    def test_crash_at_every_write_index(self, base):
        base_state, next_version = base

        def action(store: SlimStore) -> None:
            store.backup(PATH, next_version)

        # Probe run: the pipelined write schedule, faults off.
        probe = attach(base_state, config=self.CONFIG)
        policy = FaultPolicy()
        probe.oss.set_fault_policy(policy)
        action(probe)
        probe.oss.set_fault_policy(None)
        total_writes = policy.writes_seen
        assert total_writes > 0

        # Serial probe: pipelining must not change the write schedule.
        serial_probe = attach(base_state)
        serial_policy = FaultPolicy()
        serial_probe.oss.set_fault_policy(serial_policy)
        action(serial_probe)
        serial_probe.oss.set_fault_policy(None)
        assert serial_policy.writes_seen == total_writes

        for crash_at in range(total_writes):
            store = attach(base_state, config=self.CONFIG)
            policy = FaultPolicy()
            policy.crash_after_writes(crash_at)
            store.oss.set_fault_policy(policy)
            with pytest.raises(SimulatedCrashError):
                action(store)
            survivor = reattach(store)
            assert_zero_debris(survivor)
            committed = survivor.versions(PATH)
            assert committed in ([0], [0, 1])
            assert_exactly_visible(survivor, PATH, committed)
            if committed == [0, 1]:
                assert survivor.restore(PATH, 1).data == next_version
