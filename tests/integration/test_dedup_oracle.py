"""Oracle conformance: the system must track the analytical dedup bound.

For every workload generator and several seeds, back the full version
stream into a SlimStore (reverse dedup and sparse compaction on — the
steady-state configuration) and grade the measured post-maintenance
ratio against :mod:`repro.analysis.oracle`'s chunk-multiset bound.  The
declared per-workload gap is the regression budget: inline
approximations are allowed to trail the bound by at most this much
after the out-of-line pass has run.

The gaps are declared from measured behaviour (see docs/WORKLOADS.md)
with headroom for seed variance; tightening them is progress, widening
them is a regression that needs a written justification.
"""

from __future__ import annotations

import pytest

from repro.analysis import chunk_duplicate_bound, conformance
from repro.core.system import SlimStore
from repro.workloads import GENERATOR_NAMES, make_generator
from tests.conftest import SMALL_CONFIG

#: Declared maximum allowance below the chunk-multiset bound, per
#: workload.  vmfleet gets the widest budget: fleet-wide pool blocks
#: scatter across images, and a handful of cross-image duplicates
#: survive even the reverse pass inside merged superchunks.
DECLARED_GAP = {
    "sdb": 0.03,
    "rdata": 0.02,
    "vmfleet": 0.08,
    "srctree": 0.02,
    "maillog": 0.02,
}

SEEDS = (7, 23)
VERSIONS = 4


def _run_workload(name: str, seed: int):
    generator = make_generator(name, seed=seed, version_count=VERSIONS)
    versions = generator.versions()
    store = SlimStore(SMALL_CONFIG)
    for version in versions:
        for item in sorted(version.files, key=lambda f: f.path):
            store.backup(item.path, item.data)
    return generator, versions, store


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", GENERATOR_NAMES)
def test_measured_ratio_conforms_to_oracle(name, seed):
    generator, versions, store = _run_workload(name, seed)
    report = conformance(
        name, seed, versions, store, SMALL_CONFIG, generator.fresh_random_bytes
    )
    # The bound itself must be meaningful: every workload carries real
    # redundancy, none is a degenerate all-duplicate stream.
    assert 0.1 < report.bound.chunk_bound_ratio < 0.99
    report.check(DECLARED_GAP[name])


@pytest.mark.parametrize("name", GENERATOR_NAMES)
def test_entropy_bound_is_sane(name):
    """The innovation ceiling lands near the chunk bound, never at 0/1.

    The entropy bound can sit on either side of the chunk bound —
    above it when chunk granularity wastes achievable dedup (vmfleet,
    srctree), slightly below it when the generator overwrites freshly
    drawn bytes within a single version (sdb) — but a large divergence
    means the innovation accounting broke.
    """
    generator = make_generator(name, seed=11, version_count=VERSIONS)
    versions = generator.versions()
    bound = chunk_duplicate_bound(
        versions, SMALL_CONFIG, generator.fresh_random_bytes
    )
    entropy = bound.entropy_bound_ratio
    assert entropy is not None
    assert 0.0 < entropy < 1.0
    assert abs(entropy - bound.chunk_bound_ratio) < 0.20


def test_oracle_sees_reverse_dedup_reclamation():
    """On vmfleet the hybrid pipeline must land closer to the bound
    than inline-only — the reverse pass is what closes the gap."""
    from dataclasses import replace

    name, seed = "vmfleet", 7
    generator = make_generator(name, seed=seed, version_count=VERSIONS)
    versions = generator.versions()

    inline_only = replace(
        SMALL_CONFIG, reverse_dedup=False, sparse_compaction=False
    )
    gaps = {}
    for label, config in (("inline", inline_only), ("hybrid", SMALL_CONFIG)):
        store = SlimStore(config)
        for version in versions:
            for item in sorted(version.files, key=lambda f: f.path):
                store.backup(item.path, item.data)
        gaps[label] = conformance(
            name, seed, versions, store, config, generator.fresh_random_bytes
        ).gap
    assert gaps["hybrid"] < gaps["inline"]
