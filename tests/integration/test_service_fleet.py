"""Fleet-level kill matrix and overload run for the control plane.

The headline robustness harness for the multi-tenant service.  A seeded
two-tenant workload is first run fault-free to record the ground truth
(committed versions and their bytes).  A probe run then counts every
scheduler decision point and the OSS writes each decision's job performs.
The matrix replays the identical workload once per decision point with
the sole L-node killed there — first cleanly (pre-dispatch kill), then
mid-write at sampled offsets inside the job (early, late, and at the
commit boundary).  After every run the contract must hold:

* every admitted job completes — resumed or already-committed via the
  lease takeover after the node's lease expires;
* nothing is silently dropped: ``admitted + rejections == submitted``;
* every committed version restores byte-identically to the fault-free
  run, and no duplicate versions appear (exactly-once commit effect).

A separate overload run drives a seeded Poisson arrival storm past fleet
capacity and checks the backpressure contract: bounded queues, explicit
rejections that carry a positive retry-after, and zero silent drops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SlimStoreConfig
from repro.core.service import JobRequest, ServiceControlPlane, ServicePolicy
from repro.core.tenancy import BackupService
from repro.oss.faults import FaultPolicy
from repro.sim.arrivals import tenant_arrivals
from tests.conftest import mutate, random_bytes

pytestmark = pytest.mark.slow

SEED = 90210
CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)

MATRIX_POLICY = ServicePolicy(
    tenant_queue_limit=100,
    global_queue_limit=400,
    min_nodes=1,
    max_nodes=3,
    slots_per_node=1,
    lease_seconds=2.0,
    scale_up_delay_seconds=0.1,
    autoscale_cooldown_seconds=0.0,
    autoscale_high_depth=1.0,
    maintenance_idle_seconds=0.5,
)


def build_workload() -> list[tuple[float, str, str, bytes]]:
    """(time, tenant, path, data): two tenants, re-backed-up paths."""
    rng = np.random.default_rng(SEED)
    alice_v0 = random_bytes(rng, 48 * 1024)
    bob_v0 = random_bytes(rng, 48 * 1024)
    return [
        (0.0, "alice", "f", alice_v0),
        (0.2, "bob", "h", bob_v0),
        (1.1, "alice", "f", mutate(rng, alice_v0, runs=2, run_bytes=4096)),
        (1.3, "bob", "h", mutate(rng, bob_v0, runs=2, run_bytes=4096)),
        (2.4, "alice", "g", random_bytes(rng, 48 * 1024)),
        (2.6, "bob", "k", random_bytes(rng, 48 * 1024)),
    ]


def make_plane(with_faults: bool = False):
    plane = ServiceControlPlane(BackupService(config=CONFIG), MATRIX_POLICY)
    faults = None
    if with_faults:
        faults = FaultPolicy()
        plane.service.oss.set_fault_policy(faults)
    return plane, faults


def submit_workload(plane: ServiceControlPlane, workload) -> None:
    for time, tenant, path, data in workload:
        plane.submit_at(
            time, JobRequest(tenant=tenant, kind="backup", path=path, data=data)
        )


def expected_truth(workload) -> dict[tuple[str, str], list[bytes]]:
    """(tenant, path) -> payload per version, in submission order."""
    truth: dict[tuple[str, str], list[bytes]] = {}
    for _, tenant, path, data in workload:
        truth.setdefault((tenant, path), []).append(data)
    return truth


def assert_matches_truth(plane: ServiceControlPlane, truth) -> None:
    for (tenant, path), payloads in truth.items():
        store = plane.service.store_for(tenant)
        assert store.versions(path) == list(range(len(payloads))), (tenant, path)
        for version, payload in enumerate(payloads):
            restored = plane.service.restore(tenant, path, version)
            assert restored.data == payload, (tenant, path, version)


class TestFleetKillMatrix:
    @pytest.fixture(scope="class")
    def probe(self):
        """Fault-free ground truth + per-decision write counts."""
        workload = build_workload()
        truth = expected_truth(workload)
        plane, faults = make_plane(with_faults=True)
        marks: list[int] = []
        plane.decision_hook = lambda i, n, job: marks.append(faults.writes_seen)
        submit_workload(plane, workload)
        report = plane.run()
        assert not report.rejections
        assert report.completed == len(workload)
        assert report.failed == 0
        assert report.maintenance_runs > 0  # decisions include G-node work
        assert_matches_truth(plane, truth)
        marks.append(faults.writes_seen)
        writes_per_decision = [b - a for a, b in zip(marks, marks[1:])]
        return workload, truth, writes_per_decision

    def test_node_killed_at_every_decision_point(self, probe):
        """Clean kill (no torn write): the job re-queues, a replacement
        node is scaled in, and the run converges on the same truth."""
        workload, truth, writes_per_decision = probe
        for decision in range(len(writes_per_decision)):
            plane, _ = make_plane()

            def hook(index, node_id, job, decision=decision, plane=plane):
                if index == decision and plane.alive_nodes():
                    plane.kill_node(node_id)

            plane.decision_hook = hook
            submit_workload(plane, workload)
            report = plane.run()
            assert not report.rejections, decision
            assert report.node_deaths, decision
            assert report.failed == 0, decision
            assert report.completed == len(workload), decision
            assert_matches_truth(plane, truth)

    def test_node_crashed_mid_write_at_every_decision_point(self, probe):
        """Torn kill: the node dies on an OSS write inside the job.  The
        lease expires, the takeover re-attaches (running recovery) and
        either resumes the job or finds its commit already landed."""
        workload, truth, writes_per_decision = probe
        takeover_kinds: set[str] = set()
        for decision, writes in enumerate(writes_per_decision):
            if writes < 1:
                continue
            # Early, late, and commit-boundary crash offsets.
            offsets = sorted({1, max(1, writes - 2), writes - 1})
            for offset in offsets:
                plane, faults = make_plane(with_faults=True)

                def hook(index, node_id, job, decision=decision, offset=offset):
                    if index == decision:
                        faults.crash_after_writes(offset)

                plane.decision_hook = hook
                submit_workload(plane, workload)
                report = plane.run()
                tag = (decision, offset)
                assert not report.rejections, tag
                assert report.failed == 0, tag
                assert report.completed == len(workload), tag
                assert_matches_truth(plane, truth)
                takeover_kinds.update(kind for _, _, kind in report.takeovers)
        # The matrix must have crossed both sides of the commit: jobs
        # resumed from scratch AND jobs whose version had already landed.
        assert takeover_kinds == {"resumed", "already-committed"}


class TestOverloadBackpressure:
    def test_seeded_storm_rejects_explicitly_and_completes_the_rest(self):
        policy = ServicePolicy(
            tenant_queue_limit=3,
            global_queue_limit=6,
            min_nodes=1,
            max_nodes=1,
            slots_per_node=1,
            maintenance_idle_seconds=1e9,
        )
        plane = ServiceControlPlane(BackupService(config=CONFIG), policy)
        rng = np.random.default_rng(SEED)
        schedule = tenant_arrivals({"alice": 400.0, "bob": 400.0}, 0.25, seed=SEED)
        assert len(schedule) > 50  # a genuine storm, well past capacity
        payloads: dict[int, bytes] = {}
        jobs: list[JobRequest] = []
        for index, arrival in enumerate(schedule):
            data = random_bytes(rng, 32 * 1024)
            payloads[index] = data
            job = JobRequest(
                tenant=arrival.tenant, kind="backup", path=f"f{index}", data=data
            )
            jobs.append(job)
            plane.submit_at(arrival.time, job)
        report = plane.run()
        assert report.submitted == len(schedule)
        assert report.rejections  # the storm overran the bounded queues
        assert report.admitted + len(report.rejections) == report.submitted
        assert report.completed == report.admitted  # admitted => finished
        assert report.failed == 0
        for rejection in report.rejections:
            assert rejection.reason in ("tenant-queue-full", "global-queue-full")
            assert rejection.retry_after > 0
        # Both tenants were served and measured.
        summary = report.slo_summary(policy)
        for tenant in ("alice", "bob"):
            assert summary[tenant]["backup"]["count"] > 0
        # Every completed job's payload survives byte-identically.
        for index, job in enumerate(jobs):
            if job.status == "completed":
                restored = plane.service.restore(job.tenant, f"f{index}")
                assert restored.data == payloads[index]
