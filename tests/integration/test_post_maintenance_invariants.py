"""Repository invariants after the full maintenance cycle under faults.

The G-node's offline passes (reverse dedup, sparse container compaction),
user-driven version collection and degraded-mode reclamation all rewrite
shared state while a seeded FaultPolicy injects transient OSS failures.
Whatever combination ran, three invariants must hold afterwards:

1. ``scrub()`` finds zero corrupt chunks and zero dangling records;
2. every retained version restores byte-identically;
3. the sharded global index is coherent — every entry resolves to a live
   chunk, and the batched path answers exactly like the serial path.
"""

from __future__ import annotations

import pytest

from tests.conftest import SMALL_CONFIG, make_chaos_store, make_version_chain


@pytest.fixture(scope="module")
def maintained_store():
    """A chaos-backed store after backups, deletes, reclaim and compaction."""
    import numpy as np

    rng = np.random.default_rng(2468)
    store, faults = make_chaos_store(
        seed=4242,
        get_error_rate=0.04,
        put_error_rate=0.04,
        torn_write_rate=0.03,
    )
    chains = {
        "db/t1": make_version_chain(rng, versions=6, size=192 * 1024),
        "db/t2": make_version_chain(
            rng, versions=4, size=96 * 1024, runs=3, run_bytes=4 * 1024
        ),
    }
    for path, chain in chains.items():
        for version, data in enumerate(chain):
            if path == "db/t1" and version == 3:
                # One version lands during a read outage: degraded dedup.
                faults.outage({"get"})
                report = store.backup(path, data)
                faults.revive()
                assert report.degraded
            else:
                store.backup(path, data)

    # Version collection: retire the two oldest versions of the big file.
    store.delete_version("db/t1", 0)
    store.delete_version("db/t1", 1)
    # Reverse dedup over the degraded version's duplicate copies.
    reclaim = store.reclaim_degraded()
    assert reclaim is not None and store.degraded_versions() == []
    # Quiesce the endpoint for the verification phase: the invariants are
    # about the state maintenance left behind, not about live fault noise.
    store.oss.set_fault_policy(None)
    return store, chains


def test_scrub_reports_zero_corruption(maintained_store):
    store, _ = maintained_store
    report = store.scrub()
    assert report.clean
    assert report.corrupt_chunks == []
    assert report.unresolvable_records == []
    assert report.containers_checked > 0
    assert report.chunks_verified > 0


def test_all_retained_versions_restore_byte_exact(maintained_store):
    store, chains = maintained_store
    assert store.versions("db/t1") == [2, 3, 4, 5]
    assert store.versions("db/t2") == [0, 1, 2, 3]
    for path, chain in chains.items():
        for version in store.versions(path):
            assert store.restore(path, version).data == chain[version]


def test_sharded_index_resolves_every_entry_to_a_live_chunk(maintained_store):
    store, _ = maintained_store
    index = store.storage.global_index
    assert index.shard_count == SMALL_CONFIG.index_shard_count > 1

    entries = list(index.iter_items())
    assert entries, "maintenance must not empty the index"
    containers = store.storage.containers
    meta_cache = {}
    for fp, container_id in entries:
        # Prefix sharding: the entry sits in the shard its prefix selects.
        expected_shard = int.from_bytes(fp[:2], "big") % index.shard_count
        assert index.shard_of(fp) == expected_shard
        assert containers.exists(container_id), fp.hex()[:12]
        meta = meta_cache.get(container_id)
        if meta is None:
            meta = meta_cache[container_id] = containers.read_meta(container_id)
        entry = meta.find(fp)
        assert entry is not None and not entry.deleted, (
            f"index points {fp.hex()[:12]} at container {container_id} "
            "but no live copy is there"
        )


def test_batched_lookup_agrees_with_serial_lookup(maintained_store):
    store, _ = maintained_store
    index = store.storage.global_index
    fps = [fp for fp, _owner in index.iter_items()]
    # Add fingerprints the index has never seen: batched must answer None.
    unknown = [bytes([i]) * 20 for i in range(7)]
    result = index.get_many(fps + unknown)
    assert result.failed == []
    assert len(result.shard_seconds) <= index.shard_count
    for fp in fps:
        assert result.owners[fp] == index.lookup(fp)
    for fp in unknown:
        assert result.owners[fp] is None
