"""Tests for SiLO, Sparse Indexing and HAR."""

import pytest

from repro.baselines.har import HARDriver
from repro.baselines.silo import SiLOSystem
from repro.baselines.sparse_indexing import SparseIndexingSystem
from repro.core.config import SlimStoreConfig
from repro.core.storage import StorageLayer
from repro.oss.object_store import ObjectStorageService
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


class TestSiLO:
    @pytest.fixture
    def silo(self) -> SiLOSystem:
        return SiLOSystem(ObjectStorageService(), CONFIG)

    def test_first_backup_stores_everything(self, silo, rng):
        data = random_bytes(rng, 128 * 1024)
        result = silo.backup("f", data)
        assert result.stored_chunk_bytes == len(data)
        assert result.dedup_ratio == 0.0

    def test_incremental_dedup(self, silo, rng):
        data = random_bytes(rng, 256 * 1024)
        silo.backup("f", data)
        result = silo.backup("f", mutate(rng, data, 2, 8192))
        assert result.dedup_ratio > 0.7
        assert result.counters.get("dup_chunks") > 0

    def test_blocks_loaded_for_similar_segments(self, silo, rng):
        data = random_bytes(rng, 256 * 1024)
        silo.backup("f", data)
        result = silo.backup("f", data)
        assert result.counters.get("block_loads") > 0

    def test_unrelated_data_not_deduplicated(self, silo, rng):
        silo.backup("a", random_bytes(rng, 64 * 1024))
        result = silo.backup("b", random_bytes(rng, 64 * 1024))
        assert result.dedup_ratio == 0.0

    def test_intra_stream_duplicates(self, silo, rng):
        block = random_bytes(rng, 64 * 1024)
        result = silo.backup("f", block + block)
        assert result.dedup_ratio > 0.3

    def test_stored_bytes_accounting(self, silo, rng):
        data = random_bytes(rng, 128 * 1024)
        silo.backup("f", data)
        assert silo.stored_bytes() == pytest.approx(len(data), rel=0.01)


class TestSparseIndexing:
    @pytest.fixture
    def system(self) -> SparseIndexingSystem:
        return SparseIndexingSystem(ObjectStorageService(), CONFIG)

    def test_first_backup_stores_everything(self, system, rng):
        data = random_bytes(rng, 128 * 1024)
        result = system.backup("f", data)
        assert result.dedup_ratio == 0.0

    def test_incremental_dedup_via_champions(self, system, rng):
        data = random_bytes(rng, 256 * 1024)
        system.backup("f", data)
        result = system.backup("f", mutate(rng, data, 2, 8192))
        assert result.counters.get("champions_loaded") > 0
        assert result.dedup_ratio > 0.6

    def test_champion_cap_respected(self, rng):
        system = SparseIndexingSystem(ObjectStorageService(), CONFIG, max_champions=1)
        data = random_bytes(rng, 256 * 1024)
        system.backup("f", data)
        result = system.backup("f", data)
        segments = result.counters.get("segments")
        assert result.counters.get("champions_loaded") <= segments

    def test_sparse_index_is_sampled(self, system, rng):
        data = random_bytes(rng, 256 * 1024)
        result = system.backup("f", data)
        total_chunks = result.counters.get("unique_chunks")
        assert len(system._sparse_index) < total_chunks


class TestHAR:
    @pytest.fixture
    def har(self, oss) -> HARDriver:
        storage = StorageLayer.create(oss)
        return HARDriver(
            CONFIG.with_overrides(chunk_merging=False),
            storage,
            utilization_threshold=0.6,
        )

    def test_har_disables_gnode_strategies(self, har):
        assert har.config.sparse_compaction is False
        assert har.config.reverse_dedup is False

    def test_rewrites_follow_sparse_detection(self, har, rng):
        data = random_bytes(rng, 256 * 1024)
        har.backup("f", data)
        results = []
        for _ in range(5):
            data = mutate(rng, data, runs=4, run_bytes=16 * 1024)
            results.append(har.backup("f", data))
        # Once containers go sparse, later versions rewrite duplicates.
        assert any(r.counters.get("rewritten_chunks") > 0 for r in results)

    def test_state_is_per_file(self, har, rng):
        a = random_bytes(rng, 128 * 1024)
        b = random_bytes(rng, 128 * 1024)
        har.backup("a", a)
        har.backup("b", b)
        assert set(har._states) == {"a", "b"}

    def test_lag_one_version(self, har, rng):
        """HAR's sparse set is computed from version N and applied at N+1."""
        data = random_bytes(rng, 256 * 1024)
        har.backup("f", data)
        first_sparse = set(har._states["f"].sparse_containers)
        data = mutate(rng, data, runs=6, run_bytes=16 * 1024)
        har.backup("f", data)
        second_sparse = set(har._states["f"].sparse_containers)
        # The recorded set evolves version over version.
        assert first_sparse != second_sparse or not first_sparse
