"""Tests for the baseline restore caches."""

import pytest

from repro.baselines.caches import (
    ALACCRestorer,
    FAARestorer,
    LRUContainerRestorer,
    OPTCacheRestorer,
)
from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine
from repro.core.storage import StorageLayer
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024, segment_bytes=32 * 1024, chunk_merging=False
)


@pytest.fixture
def prepared(oss, rng):
    """A fragmented multi-version store plus the latest recipe records."""
    storage = StorageLayer.create(oss)
    engine = BackupEngine(CONFIG, storage)
    data = random_bytes(rng, 256 * 1024)
    engine.backup("f", data)
    for _ in range(5):
        data = mutate(rng, data, runs=3, run_bytes=8 * 1024)
        engine.backup("f", data)
    records = storage.recipes.get_recipe("f", 5).all_records()
    return storage, records, data


ALL_RESTORERS = [
    lambda storage: LRUContainerRestorer(storage.containers, 4),
    lambda storage: OPTCacheRestorer(storage.containers, 4),
    lambda storage: FAARestorer(storage.containers, 128 * 1024),
    lambda storage: ALACCRestorer(storage.containers, 64 * 1024, 64 * 1024),
]


@pytest.mark.parametrize("factory", ALL_RESTORERS)
class TestCorrectness:
    def test_restores_exact_bytes(self, prepared, factory):
        storage, records, data = prepared
        result = factory(storage).restore(records)
        assert result.data == data

    def test_metrics_populated(self, prepared, factory):
        storage, records, _ = prepared
        result = factory(storage).restore(records)
        assert result.containers_read > 0
        assert result.read_amplification > 0
        assert result.throughput_mb_s > 0
        assert result.containers_per_100mb > 0


class TestPolicyBehaviour:
    def test_lru_cache_hits(self, prepared):
        storage, records, _ = prepared
        result = LRUContainerRestorer(storage.containers, 8).restore(records)
        assert result.counters.get("cache_hits") > 0

    def test_bigger_cache_never_reads_more(self, prepared):
        storage, records, _ = prepared
        small = LRUContainerRestorer(storage.containers, 1).restore(records)
        large = LRUContainerRestorer(storage.containers, 16).restore(records)
        assert large.containers_read <= small.containers_read

    def test_opt_beats_lru_under_pressure(self, prepared):
        storage, records, _ = prepared
        lru = LRUContainerRestorer(storage.containers, 2).restore(records)
        opt = OPTCacheRestorer(storage.containers, 2).restore(records)
        assert opt.containers_read <= lru.containers_read

    def test_faa_reads_each_container_once_per_batch(self, prepared):
        storage, records, _ = prepared
        huge_faa = FAARestorer(storage.containers, 1 << 30).restore(records)
        distinct = len({r.container_id for r in records})
        assert huge_faa.containers_read == distinct

    def test_alacc_chunk_cache_hits(self, prepared):
        storage, records, _ = prepared
        result = ALACCRestorer(
            storage.containers, 64 * 1024, 1 << 20, law_records=2048
        ).restore(records)
        assert result.counters.get("chunk_cache_hits") >= 0

    def test_prefetch_threads_affect_elapsed(self, prepared):
        storage, records, _ = prepared
        serial = LRUContainerRestorer(
            storage.containers, 4, prefetch_threads=0
        ).restore(records)
        parallel = LRUContainerRestorer(
            storage.containers, 4, prefetch_threads=6
        ).restore(records)
        assert parallel.elapsed_seconds < serial.elapsed_seconds

    def test_invalid_capacities_rejected(self, prepared):
        storage, _, _ = prepared
        with pytest.raises(ValueError):
            LRUContainerRestorer(storage.containers, 0)
        with pytest.raises(ValueError):
            OPTCacheRestorer(storage.containers, 0)
        with pytest.raises(ValueError):
            FAARestorer(storage.containers, 0)
        with pytest.raises(ValueError):
            ALACCRestorer(storage.containers, 0, 100)
