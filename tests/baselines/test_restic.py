"""Tests for the restic repository model."""

import pytest

from repro.baselines.restic import ResticRepository
from repro.errors import RestoreError
from repro.oss.object_store import ObjectStorageService
from tests.conftest import mutate, random_bytes


@pytest.fixture
def repo() -> ResticRepository:
    return ResticRepository(
        ObjectStorageService(), chunk_avg=16 * 1024, pack_bytes=256 * 1024
    )


class TestBackup:
    def test_first_backup_stores_everything(self, repo, rng):
        data = random_bytes(rng, 256 * 1024)
        result = repo.backup("f", data)
        assert result.stored_chunk_bytes == len(data)
        assert result.counters.get("packs_written") >= 1

    def test_identical_backup_stores_nothing(self, repo, rng):
        data = random_bytes(rng, 256 * 1024)
        repo.backup("f", data)
        result = repo.backup("f", data)
        assert result.stored_chunk_bytes == 0
        assert result.dedup_ratio == 1.0

    def test_incremental_amplified_by_large_chunks(self, repo, rng):
        data = random_bytes(rng, 256 * 1024)
        repo.backup("f", data)
        changed = mutate(rng, data, runs=1, run_bytes=1024)
        result = repo.backup("f", changed)
        # One 1 KB edit costs at least a whole chunk (~16 KB average).
        assert result.stored_chunk_bytes >= 4 * 1024

    def test_serial_seconds_tracked(self, repo, rng):
        result = repo.backup("f", random_bytes(rng, 128 * 1024))
        assert 0 < result.serial_seconds <= result.breakdown.elapsed_serialized()

    def test_cross_file_dedup_via_global_index(self, repo, rng):
        data = random_bytes(rng, 128 * 1024)
        repo.backup("a", data)
        result = repo.backup("b", data)
        assert result.stored_chunk_bytes == 0


class TestRestore:
    def test_roundtrip(self, repo, rng):
        data = random_bytes(rng, 300 * 1024)
        result = repo.backup("f", data)
        restored = repo.restore(result.snapshot_id)
        assert restored.data == data
        assert restored.counters.get("blob_reads") > 0

    def test_multiple_snapshots_roundtrip(self, repo, rng):
        data = random_bytes(rng, 256 * 1024)
        snapshots = []
        payloads = []
        for _ in range(4):
            payloads.append(data)
            snapshots.append(repo.backup("f", data).snapshot_id)
            data = mutate(rng, data, runs=2, run_bytes=8 * 1024)
        for snapshot_id, payload in zip(snapshots, payloads):
            assert repo.restore(snapshot_id).data == payload

    def test_missing_blob_raises(self, repo, rng):
        data = random_bytes(rng, 64 * 1024)
        result = repo.backup("f", data)
        repo.fs.write_file("index/index", b"")  # wipe the index
        with pytest.raises(RestoreError):
            repo.restore(result.snapshot_id)

    def test_throughput_positive(self, repo, rng):
        result = repo.backup("f", random_bytes(rng, 128 * 1024))
        restored = repo.restore(result.snapshot_id)
        assert restored.throughput_mb_s > 0


class TestAccounting:
    def test_stored_bytes_counts_packs_only(self, repo, rng):
        data = random_bytes(rng, 256 * 1024)
        repo.backup("f", data)
        assert repo.stored_bytes() == pytest.approx(len(data), rel=0.01)

    def test_index_grows_with_unique_chunks(self, repo, rng):
        repo.backup("a", random_bytes(rng, 128 * 1024))
        first = repo._index_entry_count
        repo.backup("b", random_bytes(rng, 128 * 1024))
        assert repo._index_entry_count > first
