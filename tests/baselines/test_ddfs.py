"""Tests for the DDFS-style exact deduplication baseline."""

import pytest

from repro.baselines.ddfs import DDFSSystem
from repro.core.config import SlimStoreConfig
from repro.oss.object_store import ObjectStorageService
from tests.conftest import mutate, random_bytes

CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)


@pytest.fixture
def ddfs() -> DDFSSystem:
    return DDFSSystem(ObjectStorageService(), CONFIG)


class TestExactDedup:
    def test_first_backup_stores_everything(self, ddfs, rng):
        data = random_bytes(rng, 128 * 1024)
        result = ddfs.backup("f", data)
        assert result.dedup_ratio == 0.0
        assert result.stored_chunk_bytes == len(data)

    def test_identical_backup_is_fully_deduplicated(self, ddfs, rng):
        data = random_bytes(rng, 256 * 1024)
        ddfs.backup("f", data)
        result = ddfs.backup("f", data)
        assert result.dedup_ratio == 1.0

    def test_exact_across_unrelated_paths(self, ddfs, rng):
        """Unlike similarity-based systems, DDFS finds every duplicate
        regardless of file naming or ordering."""
        data = random_bytes(rng, 128 * 1024)
        ddfs.backup("a", data)
        result = ddfs.backup("totally/unrelated", data)
        assert result.dedup_ratio == 1.0

    def test_intra_stream_duplicates(self, ddfs, rng):
        block = random_bytes(rng, 64 * 1024)
        result = ddfs.backup("f", block + block + block)
        assert result.dedup_ratio > 0.6

    def test_exact_beats_similarity_dedup_on_scattered_change(self, rng):
        """DDFS never misses; SLIMSTORE's fast path may.  Exactness is
        DDFS's selling point, throughput is its weakness."""
        from repro import SlimStore

        data = random_bytes(rng, 512 * 1024)
        changed = mutate(rng, data, runs=6, run_bytes=4096)
        ddfs = DDFSSystem(ObjectStorageService(), CONFIG)
        slim = SlimStore(
            CONFIG.with_overrides(reverse_dedup=False, sparse_compaction=False)
        )
        ddfs.backup("f", data)
        slim.backup("f", data)
        exact = ddfs.backup("f", changed)
        fast = slim.backup("f", changed)
        assert exact.dedup_ratio >= fast.dedup_ratio - 0.01


class TestLocalityCache:
    def test_bloom_skips_unique_chunks(self, ddfs, rng):
        result = ddfs.backup("f", random_bytes(rng, 128 * 1024))
        # All chunks unique: the Bloom filter answered for (almost) all.
        assert result.counters.get("index_reads") <= 2  # rare false positives

    def test_locality_absorbs_index_reads(self, ddfs, rng):
        data = random_bytes(rng, 256 * 1024)
        ddfs.backup("f", data)
        # Drop the in-RAM cache to force cold lookups, then re-backup:
        # one index read per container (not per chunk) thanks to
        # locality-preserved caching.
        ddfs._cache.clear()
        ddfs._cached_containers.clear()
        result = ddfs.backup("f", data)
        chunks = result.counters.get("dup_chunks")
        reads = result.counters.get("index_reads")
        containers = result.counters.get("container_meta_loads")
        assert reads <= containers + 2
        assert reads < chunks / 4

    def test_cache_eviction_bounded(self, rng):
        ddfs = DDFSSystem(ObjectStorageService(), CONFIG, cache_containers=2)
        ddfs.backup("f", random_bytes(rng, 512 * 1024))
        assert len(ddfs._cached_containers) <= 2

    def test_remote_index_slows_cold_dedup(self, ddfs, rng):
        """The paper's argument: frequent on-OSS index access is onerous.
        A cold-cache DDFS pass spends visible download time on lookups."""
        data = random_bytes(rng, 256 * 1024)
        ddfs.backup("f", data)
        ddfs._cache.clear()
        ddfs._cached_containers.clear()
        ddfs._index.flush()  # push the index out of the memtable
        result = ddfs.backup("f", data)
        assert result.breakdown.download > 0
