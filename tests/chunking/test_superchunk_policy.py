"""Tests for the history-aware chunk merging policy."""

import pytest

from repro.chunking.superchunk import MergePolicy
from repro.core.recipe import ChunkRecord

KB = 1024


def record(size=8 * KB, duplicate_times=5, is_duplicate=True, is_superchunk=False):
    return ChunkRecord(
        fp=b"\x01" * 20,
        container_id=0,
        size=size,
        duplicate_times=duplicate_times,
        is_superchunk=is_superchunk,
        first_fp=b"\x02" * 20 if is_superchunk else b"",
        first_size=4 * KB if is_superchunk else 0,
        is_duplicate=is_duplicate,
    )


@pytest.fixture
def policy() -> MergePolicy:
    return MergePolicy(
        threshold=5, min_superchunk_bytes=16 * KB, max_superchunk_bytes=64 * KB
    )


class TestQualification:
    def test_qualifying_record(self, policy):
        assert policy.record_qualifies(record())

    def test_below_threshold_rejected(self, policy):
        assert not policy.record_qualifies(record(duplicate_times=4))

    def test_unique_rejected(self, policy):
        assert not policy.record_qualifies(record(is_duplicate=False))

    def test_existing_superchunk_rejected(self, policy):
        assert not policy.record_qualifies(record(is_superchunk=True))

    def test_disabled_policy_rejects_all(self):
        policy = MergePolicy(enabled=False)
        assert not policy.record_qualifies(record())
        assert policy.plan_merge_runs([record()] * 10) == []


class TestRunPlanning:
    def test_merges_long_run(self, policy):
        records = [record() for _ in range(4)]  # 32 KB total
        assert policy.plan_merge_runs(records) == [(0, 4)]

    def test_short_run_skipped(self, policy):
        records = [record(size=4 * KB)]  # below min_superchunk_bytes
        assert policy.plan_merge_runs(records) == []

    def test_run_split_at_max(self, policy):
        records = [record(size=16 * KB) for _ in range(6)]  # 96 KB run
        runs = policy.plan_merge_runs(records)
        assert runs == [(0, 4), (4, 6)]
        for start, end in runs:
            total = sum(r.size for r in records[start:end])
            assert 16 * KB <= total <= 64 * KB

    def test_non_qualifying_breaks_run(self, policy):
        records = [record(), record(), record(duplicate_times=1), record(), record()]
        runs = policy.plan_merge_runs(records)
        assert runs == [(0, 2), (3, 5)]

    def test_tail_remainder_below_min_dropped(self, policy):
        records = [record(size=16 * KB) for _ in range(4)] + [record(size=4 * KB)]
        runs = policy.plan_merge_runs(records)
        assert runs == [(0, 4)]

    def test_empty_input(self, policy):
        assert policy.plan_merge_runs([]) == []


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MergePolicy(threshold=0)

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            MergePolicy(min_superchunk_bytes=1024, max_superchunk_bytes=512)
