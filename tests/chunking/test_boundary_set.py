"""Tests for BoundarySet cut-point semantics."""

import numpy as np
import pytest

from repro.chunking.base import BoundarySet, ChunkerParams
from repro.errors import ChunkingError

PARAMS = ChunkerParams(1024, 4096, 32768)


def boundary_set(length: int, positions, strict=None) -> BoundarySet:
    return BoundarySet(
        length,
        PARAMS,
        np.asarray(positions, dtype=np.int64),
        None if strict is None else np.asarray(strict, dtype=np.int64),
    )


class TestNextCut:
    def test_first_candidate_after_min(self):
        bset = boundary_set(100000, [500, 2000, 6000])
        # 500 is below start+min (1024); 2000 is the first admissible.
        assert bset.next_cut(0) == 2000

    def test_falls_back_to_max(self):
        bset = boundary_set(100000, [])
        assert bset.next_cut(0) == PARAMS.max_size

    def test_end_of_buffer_always_cut(self):
        bset = boundary_set(3000, [])
        assert bset.next_cut(0) == 3000
        assert bset.next_cut(2999) == 3000

    def test_strict_preferred_before_avg(self):
        # Permissive candidate at 2000, strict at 3000: strict phase scans
        # (min, avg] and takes 3000 even though 2000 is earlier.
        bset = boundary_set(100000, [2000, 3000], strict=[3000])
        assert bset.next_cut(0) == 3000

    def test_permissive_used_after_avg(self):
        # No strict candidate in (min, avg]; a permissive at 6000 wins.
        bset = boundary_set(100000, [6000], strict=[])
        assert bset.next_cut(0) == 6000

    def test_out_of_range_start_rejected(self):
        bset = boundary_set(1000, [])
        with pytest.raises(ChunkingError):
            bset.next_cut(1000)
        with pytest.raises(ChunkingError):
            bset.next_cut(-1)

    def test_relative_to_start(self):
        bset = boundary_set(100000, [2000, 12000])
        assert bset.next_cut(10000) == 12000


class TestIsCut:
    def test_accepts_candidate_in_bounds(self):
        bset = boundary_set(100000, [3000], strict=[3000])
        assert bset.is_cut(0, 3000)

    def test_rejects_non_candidate(self):
        bset = boundary_set(100000, [3000], strict=[3000])
        assert not bset.is_cut(0, 2999)

    def test_rejects_below_min(self):
        bset = boundary_set(100000, [500], strict=[500])
        assert not bset.is_cut(0, 500)

    def test_max_size_always_admissible(self):
        bset = boundary_set(100000, [])
        assert bset.is_cut(0, PARAMS.max_size)

    def test_eof_always_admissible(self):
        bset = boundary_set(2000, [])
        assert bset.is_cut(0, 2000)
        assert bset.is_cut(1999, 2000)

    def test_eof_beyond_max_rejected(self):
        bset = boundary_set(PARAMS.max_size + 10, [])
        assert not bset.is_cut(0, PARAMS.max_size + 10)

    def test_strict_required_at_or_below_avg(self):
        # 3000 <= avg: the strict set decides; only permissive -> reject.
        bset = boundary_set(100000, [3000], strict=[])
        assert not bset.is_cut(0, 3000)
        # 6000 > avg: the permissive set decides.
        bset2 = boundary_set(100000, [6000], strict=[])
        assert bset2.is_cut(0, 6000)
