"""Property-based chunking invariants (Hypothesis).

Everything above the chunker trusts three facts: the chunks concatenate
back to the input, every cut respects the configured size band, and the
cut positions are a pure function of content (which is what makes skip
chunking sound: replaying a previous version's cut points on identical
data must land on admissible boundaries).  These tests state those facts
as properties over arbitrary byte streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking.base import ChunkerParams, make_chunker
from repro.chunking.superchunk import MergePolicy

CHUNKER_NAMES = ["fixed", "gear", "rabin", "fastcdc"]
#: Small band so even a few KB of input crosses many cut points.
PARAMS = ChunkerParams(min_size=64, avg_size=256, max_size=1024)

payloads = st.one_of(
    st.binary(min_size=0, max_size=16 * 1024),
    # Low-entropy inputs: long runs defeat naive rolling-hash conditions.
    st.integers(0, 255).flatmap(
        lambda b: st.integers(1, 16 * 1024).map(lambda n: bytes([b]) * n)
    ),
)


@pytest.mark.parametrize("name", CHUNKER_NAMES)
@given(data=payloads)
def test_chunks_concatenate_to_input(name, data):
    chunker = make_chunker(name, PARAMS)
    chunks = chunker.chunk(data)
    assert b"".join(chunk.data for chunk in chunks) == data
    # Chunk spans tile the stream exactly.
    position = 0
    for chunk in chunks:
        assert chunk.start == position
        assert chunk.end - chunk.start == len(chunk.data)
        position = chunk.end
    assert position == len(data)


@pytest.mark.parametrize("name", CHUNKER_NAMES)
@given(data=payloads)
def test_chunk_sizes_respect_the_band(name, data):
    chunker = make_chunker(name, PARAMS)
    chunks = chunker.chunk(data)
    for chunk in chunks[:-1]:
        assert PARAMS.min_size <= len(chunk.data) <= PARAMS.max_size
    if chunks:
        assert len(chunks[-1].data) <= PARAMS.max_size


@pytest.mark.parametrize("name", CHUNKER_NAMES)
@given(data=payloads)
def test_cut_points_are_content_defined_and_replayable(name, data):
    """Identical content yields identical cuts, and every produced cut is
    admissible under ``is_cut`` — the exact probe skip chunking replays."""
    chunker = make_chunker(name, PARAMS)
    first = [(c.start, c.end) for c in chunker.chunk(data)]
    second = [(c.start, c.end) for c in make_chunker(name, PARAMS).chunk(data)]
    assert first == second
    boundary_set = chunker.boundaries(data)
    for start, end in first:
        assert boundary_set.is_cut(start, end)


# ---------------------------------------------------------------------------
# Superchunk merge planning
# ---------------------------------------------------------------------------


@dataclass
class _Record:
    size: int
    duplicate_times: int
    is_superchunk: bool
    is_duplicate: bool


records = st.lists(
    st.builds(
        _Record,
        size=st.integers(1, 8 * 1024),
        duplicate_times=st.integers(0, 10),
        is_superchunk=st.booleans(),
        is_duplicate=st.booleans(),
    ),
    max_size=40,
)

policies = st.builds(
    MergePolicy,
    enabled=st.just(True),
    threshold=st.integers(1, 6),
    min_superchunk_bytes=st.just(2 * 1024),
    max_superchunk_bytes=st.just(8 * 1024),
)


@given(policy=policies, items=records)
def test_merge_runs_are_disjoint_qualified_and_in_band(policy, items):
    runs = policy.plan_merge_runs(items)
    previous_end = 0
    for start, end in runs:
        # Sorted, disjoint, in range.
        assert 0 <= start < end <= len(items)
        assert start >= previous_end
        previous_end = end
        # Every merged record qualifies under the policy.
        for record in items[start:end]:
            assert policy.record_qualifies(record)
        # The resulting superchunk fits the configured size band.
        total = sum(record.size for record in items[start:end])
        assert policy.min_superchunk_bytes <= total <= policy.max_superchunk_bytes


@given(items=records)
def test_disabled_policy_never_merges(items):
    policy = MergePolicy(
        enabled=False,
        min_superchunk_bytes=2 * 1024,
        max_superchunk_bytes=8 * 1024,
    )
    assert policy.plan_merge_runs(items) == []


# ---------------------------------------------------------------------------
# Skip-chunking replay determinism at the system level
# ---------------------------------------------------------------------------


@given(seed=st.integers(0, 2**31), versions=st.integers(1, 3))
@settings(max_examples=10)
def test_two_identical_stores_ingest_identically(seed, versions):
    """Skip chunking replays history; two stores fed the same stream must
    make identical decisions (counters included) and both restore exactly."""
    import numpy as np

    from repro import SlimStore
    from tests.conftest import SMALL_CONFIG, make_version_chain

    chain = make_version_chain(
        np.random.default_rng(seed), versions=versions, size=64 * 1024
    )
    first, second = SlimStore(SMALL_CONFIG), SlimStore(SMALL_CONFIG)
    for data in chain:
        result_a = first.backup("f", data).result
        result_b = second.backup("f", data).result
        assert result_a.counters.as_dict() == result_b.counters.as_dict()
        assert result_a.unique_fps == result_b.unique_fps
    for version, data in enumerate(chain):
        assert first.restore("f", version).data == data
        assert second.restore("f", version).data == data
