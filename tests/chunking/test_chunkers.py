"""Tests shared across every chunking algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    ChunkerParams,
    FastCDCChunker,
    FixedChunker,
    GearChunker,
    RabinChunker,
    make_chunker,
)
from repro.errors import ChunkingError
from tests.conftest import mutate, random_bytes

CDC_CLASSES = [RabinChunker, GearChunker, FastCDCChunker]
ALL_CLASSES = CDC_CLASSES + [FixedChunker]
PARAMS = ChunkerParams(1024, 4096, 32768)


def data_1mb() -> bytes:
    return random_bytes(np.random.default_rng(7), 1 << 20)


class TestChunkerParams:
    def test_defaults_valid(self):
        params = ChunkerParams()
        assert params.min_size <= params.avg_size <= params.max_size

    def test_rejects_disordered_sizes(self):
        with pytest.raises(ChunkingError):
            ChunkerParams(8192, 4096, 32768)

    def test_rejects_non_power_of_two_avg(self):
        with pytest.raises(ChunkingError):
            ChunkerParams(1024, 5000, 32768)

    def test_scaled_keeps_shape(self):
        params = ChunkerParams().scaled(16384)
        assert params.avg_size == 16384
        assert params.min_size == 4096
        assert params.max_size == 16384 * 8


@pytest.mark.parametrize("cls", ALL_CLASSES)
class TestPartitioning:
    def test_chunks_partition_input(self, cls):
        data = data_1mb()
        chunks = cls(PARAMS).chunk(data)
        assert b"".join(chunk.data for chunk in chunks) == data
        # Offsets are contiguous.
        position = 0
        for chunk in chunks:
            assert chunk.start == position
            position = chunk.end
        assert position == len(data)

    def test_deterministic(self, cls):
        data = data_1mb()
        chunker = cls(PARAMS)
        first = [(c.start, c.end) for c in chunker.chunk(data)]
        second = [(c.start, c.end) for c in chunker.chunk(data)]
        assert first == second

    def test_size_bounds_respected(self, cls):
        chunker = cls(PARAMS)
        chunks = chunker.chunk(data_1mb())
        for chunk in chunks[:-1]:
            assert chunker.params.min_size <= chunk.size <= chunker.params.max_size
        assert chunks[-1].size <= chunker.params.max_size

    def test_empty_input(self, cls):
        assert cls(PARAMS).chunk(b"") == []

    def test_tiny_input_single_chunk(self, cls):
        data = b"short data"
        chunks = cls(PARAMS).chunk(data)
        assert len(chunks) == 1
        assert chunks[0].data == data


@pytest.mark.parametrize("cls", CDC_CLASSES)
class TestContentDefinedProperties:
    def test_average_near_target(self, cls):
        chunks = cls(PARAMS).chunk(data_1mb())
        average = (1 << 20) / len(chunks)
        assert PARAMS.avg_size * 0.5 <= average <= PARAMS.avg_size * 3

    def test_boundary_shift_resilience(self, cls):
        """Inserting one byte must preserve most chunk content (the
        boundary-shift problem CDC exists to solve)."""
        data = data_1mb()
        shifted = data[: 1 << 19] + b"!" + data[1 << 19 :]
        original = {bytes(c.data) for c in cls(PARAMS).chunk(data)}
        after = {bytes(c.data) for c in cls(PARAMS).chunk(shifted)}
        assert len(original & after) / len(original) > 0.9

    def test_localized_change_localized_damage(self, cls):
        rng = np.random.default_rng(3)
        data = data_1mb()
        changed = mutate(rng, data, runs=1, run_bytes=4096)
        original = {bytes(c.data) for c in cls(PARAMS).chunk(data)}
        after = {bytes(c.data) for c in cls(PARAMS).chunk(changed)}
        # One 4 KB mutation invalidates only a handful of chunks.
        assert len(after - original) <= 6

    def test_is_cut_accepts_real_boundaries(self, cls):
        data = data_1mb()
        chunker = cls(PARAMS)
        boundary_set = chunker.boundaries(data)
        for chunk in chunker.chunk(data):
            assert boundary_set.is_cut(chunk.start, chunk.end)

    def test_is_cut_rejects_wrong_sizes(self, cls):
        data = data_1mb()
        boundary_set = cls(PARAMS).boundaries(data)
        assert not boundary_set.is_cut(0, PARAMS.min_size - 1)
        assert not boundary_set.is_cut(0, PARAMS.max_size + 1)
        assert not boundary_set.is_cut(100, 100)


class TestFixedChunker:
    def test_cuts_exact_multiples(self):
        chunker = FixedChunker(ChunkerParams(4096, 4096, 4096))
        chunks = chunker.chunk(b"x" * 10000)
        assert [c.size for c in chunks] == [4096, 4096, 10000 - 8192]

    def test_boundary_shift_hurts_fixed(self):
        data = data_1mb()
        shifted = b"!" + data
        chunker = FixedChunker(ChunkerParams(4096, 4096, 4096))
        original = {bytes(c.data) for c in chunker.chunk(data)}
        after = {bytes(c.data) for c in chunker.chunk(shifted)}
        # Every chunk boundary moved: almost nothing survives.
        assert len(original & after) / len(original) < 0.05


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("rabin", RabinChunker), ("gear", GearChunker),
         ("fastcdc", FastCDCChunker), ("fixed", FixedChunker)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_chunker(name, PARAMS), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ChunkingError):
            make_chunker("quantum")

    def test_window_guard(self):
        with pytest.raises(ValueError):
            RabinChunker(ChunkerParams(16, 4096, 32768))
        with pytest.raises(ValueError):
            GearChunker(ChunkerParams(16, 4096, 32768))


@given(seed=st.integers(min_value=0, max_value=2**31), size=st.integers(0, 1 << 16))
@settings(max_examples=20, deadline=None)
def test_fastcdc_partitions_any_input(seed, size):
    data = random_bytes(np.random.default_rng(seed), size)
    chunks = FastCDCChunker(ChunkerParams(256, 1024, 8192)).chunk(data)
    assert b"".join(c.data for c in chunks) == data


@given(st.binary(max_size=4096))
@settings(max_examples=30, deadline=None)
def test_gear_partitions_arbitrary_bytes(payload):
    chunks = GearChunker(ChunkerParams(64, 256, 2048)).chunk(payload)
    assert b"".join(c.data for c in chunks) == payload
