"""Shared fixtures and helpers for the unit and integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SlimStoreConfig
from repro.oss.object_store import ObjectStorageService
from repro.sim.clock import SimClock
from repro.sim.cost_model import CostModel

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis ships with the image
    settings = None

if settings is not None:
    # One deterministic profile for every property test: derandomized so
    # CI and local runs explore the identical example sequence, with the
    # deadline off (the simulated OSS makes some examples slow on cold
    # caches, which is load, not a bug).
    settings.register_profile(
        "repro-deterministic",
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    settings.load_profile("repro-deterministic")


#: Small store geometry shared by the integration suites: containers and
#: superchunks sized so test payloads of a few hundred KB still exercise
#: merging, sparse compaction and reverse dedup.
SMALL_CONFIG = SlimStoreConfig(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    min_superchunk_bytes=16 * 1024,
    max_superchunk_bytes=32 * 1024,
    merge_threshold=3,
)


@pytest.fixture
def oss() -> ObjectStorageService:
    """A fresh simulated OSS endpoint."""
    return ObjectStorageService(CostModel(), SimClock())


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for deterministic test data."""
    return np.random.default_rng(12345)


def random_bytes(rng: np.random.Generator, size: int) -> bytes:
    """Uniformly random (incompressible) test payload."""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def mutate(rng: np.random.Generator, data: bytes, runs: int, run_bytes: int) -> bytes:
    """Overwrite ``runs`` clustered ranges of ``data`` with fresh bytes."""
    out = bytearray(data)
    for _ in range(runs):
        run = min(run_bytes, len(out))
        start = int(rng.integers(0, max(1, len(out) - run)))
        out[start : start + run] = random_bytes(rng, run)
    return bytes(out)


def make_version_chain(
    rng: np.random.Generator,
    versions: int = 6,
    size: int = 256 * 1024,
    runs: int = 2,
    run_bytes: int = 8 * 1024,
) -> list[bytes]:
    """A seeded multi-version workload: a base file plus clustered edits.

    This is the canonical backup stream of the integration tests — enough
    shared data between versions for dedup, merging and reverse dedup to
    all trigger under :data:`SMALL_CONFIG` geometry.
    """
    chain = [random_bytes(rng, size)]
    for _ in range(versions - 1):
        chain.append(mutate(rng, chain[-1], runs=runs, run_bytes=run_bytes))
    return chain


def bucket_state(oss: ObjectStorageService) -> dict[str, dict[str, bytes]]:
    """Deep-copy every bucket's objects — the byte-level repository state.

    Two repositories are identical iff their bucket states are equal;
    the crash matrix forks runs from this snapshot, and the trace
    round-trip / differential-parity suites compare against it.
    """
    return {
        bucket: dict(oss._backend(bucket)._objects)
        for bucket in oss.bucket_names()
    }


def make_chaos_store(seed: int = 2026, config: SlimStoreConfig | None = None, **rates):
    """A SlimStore whose OSS injects faults, fronted by a retrying client."""
    from repro import FaultPolicy, RetryPolicy, SlimStore

    faults = FaultPolicy(seed=seed, **rates)
    oss = ObjectStorageService(faults=faults)
    store = SlimStore(
        config or SMALL_CONFIG,
        oss,
        retry_policy=RetryPolicy(
            seed=seed, base_delay=0.01, max_delay=0.2, backoff_budget_seconds=5.0
        ),
    )
    return store, faults


@pytest.fixture
def version_chain(rng) -> list[bytes]:
    """The default six-version seeded workload."""
    return make_version_chain(rng)


@pytest.fixture
def aged_store(rng):
    """A store with history: merging, compaction and reverse dedup ran."""
    from repro import SlimStore

    store = SlimStore(SMALL_CONFIG)
    payloads = make_version_chain(rng)
    for payload in payloads:
        store.backup("f", payload)
    return store, payloads
