"""Shared fixtures and helpers for the unit and integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oss.object_store import ObjectStorageService
from repro.sim.clock import SimClock
from repro.sim.cost_model import CostModel


@pytest.fixture
def oss() -> ObjectStorageService:
    """A fresh simulated OSS endpoint."""
    return ObjectStorageService(CostModel(), SimClock())


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for deterministic test data."""
    return np.random.default_rng(12345)


def random_bytes(rng: np.random.Generator, size: int) -> bytes:
    """Uniformly random (incompressible) test payload."""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def mutate(rng: np.random.Generator, data: bytes, runs: int, run_bytes: int) -> bytes:
    """Overwrite ``runs`` clustered ranges of ``data`` with fresh bytes."""
    out = bytearray(data)
    for _ in range(runs):
        run = min(run_bytes, len(out))
        start = int(rng.integers(0, max(1, len(out) - run)))
        out[start : start + run] = random_bytes(rng, run)
    return bytes(out)
