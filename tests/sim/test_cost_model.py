"""Tests for the calibrated cost model."""

import pytest

from repro.sim.cost_model import MIB, CostModel


class TestChunkingCosts:
    def test_rabin_is_most_expensive_cdc(self):
        model = CostModel()
        size = 1 << 20
        rabin = model.chunking_cost("rabin", size)
        gear = model.chunking_cost("gear", size)
        fastcdc = model.chunking_cost("fastcdc", size)
        assert rabin > gear >= fastcdc

    def test_skip_is_cheapest_scan(self):
        model = CostModel()
        size = 1 << 20
        assert model.chunking_cost("skip", size) < model.chunking_cost("fastcdc", size)
        assert model.chunking_cost("skip", size) < model.chunking_cost("fixed", size) * 10

    def test_cost_scales_linearly_with_bytes(self):
        model = CostModel()
        assert model.chunking_cost("rabin", 2000) == pytest.approx(
            2 * model.chunking_cost("rabin", 1000)
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            CostModel().chunking_cost("magic", 100)

    def test_zero_bytes_cost_nothing(self):
        assert CostModel().chunking_cost("rabin", 0) == 0.0


class TestNetworkCosts:
    def test_read_includes_latency(self):
        model = CostModel()
        assert model.oss_read_time(0) == pytest.approx(model.oss_request_latency)

    def test_read_bandwidth_term(self):
        model = CostModel()
        one_mib = model.oss_read_time(1 << 20) - model.oss_request_latency
        assert one_mib == pytest.approx((1 << 20) / model.oss_read_bandwidth)

    def test_channels_scale_bandwidth(self):
        model = CostModel()
        single = model.oss_read_time(64 << 20) - model.oss_request_latency
        dual = model.oss_read_time(64 << 20, channels=2) - model.oss_request_latency
        assert dual == pytest.approx(single / 2)

    def test_channels_capped_by_nic(self):
        model = CostModel()
        many = model.oss_read_time(64 << 20, channels=1000) - model.oss_request_latency
        assert many == pytest.approx((64 << 20) / model.node_nic_bandwidth)

    def test_invalid_channel_count_rejected(self):
        with pytest.raises(ValueError):
            CostModel().oss_read_time(100, channels=0)
        with pytest.raises(ValueError):
            CostModel().oss_write_time(100, channels=-1)

    def test_write_time_structure(self):
        model = CostModel()
        expected = model.oss_request_latency + (1 << 20) / model.oss_write_bandwidth
        assert model.oss_write_time(1 << 20) == pytest.approx(expected)


class TestCalibration:
    """The magnitudes the paper's experiments rely on."""

    def test_single_channel_read_near_40_mbps(self):
        model = CostModel()
        seconds = model.oss_read_time(100 << 20)
        assert 30 * MIB <= (100 << 20) / seconds <= 45 * MIB

    def test_restore_cpu_ceiling_near_208_mbps(self):
        model = CostModel()
        ceiling = 1 / model.cpu_restore_per_byte / MIB
        assert 180 <= ceiling <= 230

    def test_frozen(self):
        model = CostModel()
        with pytest.raises(AttributeError):
            model.oss_request_latency = 0.5
