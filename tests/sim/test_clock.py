"""Tests for the virtual clock."""

import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(1.75)

    def test_advance_zero_is_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_advance_rejects_negative(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_jumps_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_rejects_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_repr_shows_time(self):
        assert "1.5" in repr(SimClock(1.5))
