"""Tests for the event-driven segment-parallel backup ingest pipeline."""

import pytest

from repro.core.cluster import BackupJobSpec, ClusterSimulator
from repro.sim.events import simulate_backup_pipeline
from repro.sim.parallel import pipelined_ingest_time


class TestSerialSchedule:
    def test_zero_lookahead_serialises_chunk_and_lookup(self):
        # ahead=0: chunk(i+1) may only start once lookup(i) completed, so
        # with no flushes the schedule is the exact serial sum.
        stats = simulate_backup_pipeline(
            [1.0, 2.0, 3.0],
            [0.5, 0.5, 0.5],
            setup_seconds=0.25,
            finish_seconds=0.75,
        )
        assert stats.elapsed_seconds == pytest.approx(0.25 + 6.0 + 1.5 + 0.75)
        # The spine waited for every single segment to be chunked.
        assert stats.chunk_stall_count == 3
        assert stats.chunk_stall_seconds == pytest.approx(6.0)

    def test_synchronous_flush_blocks_the_spine(self):
        # flush_buffers=0: the upload is paid inline on the spine.
        stats = simulate_backup_pipeline(
            [1.0, 1.0],
            [1.0, 1.0],
            flush_after=[1],
            flush_seconds=[5.0],
        )
        assert stats.elapsed_seconds == pytest.approx(4.0 + 5.0)
        assert stats.flush_stall_count == 1
        assert stats.flush_stall_seconds == pytest.approx(5.0)

    def test_empty_stream_runs_setup_flush_finish(self):
        stats = simulate_backup_pipeline(
            [],
            [],
            flush_after=[0],
            flush_seconds=[1.0],
            setup_seconds=0.5,
            finish_seconds=0.25,
        )
        assert stats.elapsed_seconds == pytest.approx(0.5 + 1.0 + 0.25)

    def test_flush_after_past_last_segment_is_clamped(self):
        stats = simulate_backup_pipeline(
            [1.0, 1.0],
            [1.0, 1.0],
            flush_after=[10],
            flush_seconds=[2.0],
        )
        assert stats.elapsed_seconds == pytest.approx(4.0 + 2.0)


class TestOverlap:
    def test_full_lookahead_reaches_the_spine_bound(self):
        # With the window wide open every chunk runs up front and the job
        # is limited by chunk[0] + sum(lookup) — the closed-form bound.
        chunk = [1.0] * 4
        lookup = [2.0] * 4
        stats = simulate_backup_pipeline(chunk, lookup, ingest_segments=3)
        bound = pipelined_ingest_time(chunk, lookup)
        assert stats.elapsed_seconds == pytest.approx(bound)
        assert stats.chunk_stall_count == 1  # only segment 0

    def test_event_schedule_never_beats_the_closed_form_bound(self):
        chunk = [0.3, 1.1, 0.2, 0.9, 0.5]
        lookup = [0.4, 0.2, 0.8, 0.1, 0.6]
        flush = [1.5, 2.5]
        for ahead in (0, 1, 4):
            for buffers in (0, 1, 3):
                stats = simulate_backup_pipeline(
                    chunk,
                    lookup,
                    flush_after=[2, 4],
                    flush_seconds=flush,
                    ingest_segments=ahead,
                    flush_buffers=buffers,
                    channels=4,
                )
                bound = pipelined_ingest_time(chunk, lookup, flush, channels=4)
                assert stats.elapsed_seconds >= bound - 1e-12

    def test_double_buffering_hides_uploads(self):
        kwargs = dict(
            chunk_seconds=[0.0, 0.0, 0.0],
            lookup_seconds=[1.0, 1.0, 1.0],
            flush_after=[0, 1],
            flush_seconds=[2.0, 2.0],
            ingest_segments=2,
        )
        serial = simulate_backup_pipeline(**kwargs, flush_buffers=0)
        double = simulate_backup_pipeline(**kwargs, flush_buffers=1)
        roomy = simulate_backup_pipeline(**kwargs, flush_buffers=2)
        # 0 buffers: both uploads block the spine (3 + 4 = 7s).
        assert serial.elapsed_seconds == pytest.approx(7.0)
        # 1 buffer: second flush waits for the first buffer (1s stall).
        assert double.elapsed_seconds == pytest.approx(5.0)
        assert double.flush_stall_count == 1
        assert double.flush_stall_seconds == pytest.approx(1.0)
        # 2 buffers: uploads fully off the spine; drain ends at t=4.
        assert roomy.elapsed_seconds == pytest.approx(4.0)
        assert roomy.flush_stall_count == 0

    def test_more_lookahead_never_slows_the_job(self):
        chunk = [0.7, 0.3, 0.9, 0.4]
        lookup = [0.2, 0.6, 0.1, 0.5]
        elapsed = [
            simulate_backup_pipeline(chunk, lookup, ingest_segments=a).elapsed_seconds
            for a in (0, 1, 2, 3)
        ]
        assert elapsed == sorted(elapsed, reverse=True)


class TestIndexRoundTrips:
    def test_rpc_latency_beyond_cpu_is_waited_and_counted(self):
        stats = simulate_backup_pipeline(
            [0.0],
            [1.0],
            lookup_rpcs=[[3.0]],
        )
        assert stats.elapsed_seconds == pytest.approx(3.0)
        assert stats.rpc_wait_seconds == pytest.approx(2.0)

    def test_rpcs_hidden_under_cpu_cost_nothing(self):
        stats = simulate_backup_pipeline(
            [0.0],
            [2.0],
            lookup_rpcs=[[0.5, 0.5]],
        )
        assert stats.elapsed_seconds == pytest.approx(2.0)
        assert stats.rpc_wait_seconds == pytest.approx(0.0)

    def test_single_channel_serialises_a_segments_batches(self):
        stats = simulate_backup_pipeline(
            [0.0],
            [1.0],
            lookup_rpcs=[[2.0, 2.0]],
            channels=1,
        )
        assert stats.elapsed_seconds == pytest.approx(4.0)
        assert stats.rpc_wait_seconds == pytest.approx(3.0)

    def test_channel_busy_accounting_matches_work(self):
        stats = simulate_backup_pipeline(
            [0.0, 0.0],
            [1.0, 1.0],
            lookup_rpcs=[[0.5], [0.5]],
            flush_after=[1],
            flush_seconds=[2.0],
            channels=2,
        )
        assert sum(stats.channel_busy_seconds) == pytest.approx(0.5 + 0.5 + 2.0)


class TestValidation:
    def test_rejects_misaligned_traces(self):
        with pytest.raises(ValueError):
            simulate_backup_pipeline([1.0], [])
        with pytest.raises(ValueError):
            simulate_backup_pipeline([1.0], [1.0], flush_after=[0], flush_seconds=[])
        with pytest.raises(ValueError):
            simulate_backup_pipeline([1.0], [1.0], lookup_rpcs=[[], []])

    def test_rejects_negative_knobs_and_durations(self):
        with pytest.raises(ValueError):
            simulate_backup_pipeline([1.0], [1.0], ingest_segments=-1)
        with pytest.raises(ValueError):
            simulate_backup_pipeline([1.0], [1.0], flush_buffers=-1)
        with pytest.raises(ValueError):
            simulate_backup_pipeline([-1.0], [1.0])

    def test_deterministic_replay(self):
        args = dict(
            chunk_seconds=[0.3, 0.7, 0.2],
            lookup_seconds=[0.5, 0.1, 0.4],
            lookup_rpcs=[[0.2], [], [0.3, 0.1]],
            flush_after=[1],
            flush_seconds=[0.9],
            ingest_segments=1,
            flush_buffers=1,
        )
        first = simulate_backup_pipeline(**args)
        second = simulate_backup_pipeline(**args)
        assert first == second


def make_spec(**knobs) -> BackupJobSpec:
    return BackupJobSpec(
        logical_bytes=float(1 << 20),
        chunk_seconds=(0.2, 0.2, 0.2, 0.2),
        lookup_seconds=(0.1, 0.1, 0.1, 0.1),
        lookup_rpcs=((0.05,), (), (0.05,), ()),
        flush_after=(1, 3),
        flush_seconds=(0.3, 0.3),
        setup_seconds=0.01,
        finish_seconds=0.02,
        **knobs,
    )


class TestClusterBackupPipelines:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            make_spec(ingest_segments=-1)
        with pytest.raises(ValueError):
            BackupJobSpec(1.0, (1.0,), (), (), (), ())

    def test_with_knobs_returns_retuned_copy(self):
        spec = make_spec()
        tuned = spec.with_knobs(3, 2)
        assert (tuned.ingest_segments, tuned.flush_buffers) == (3, 2)
        assert tuned.chunk_seconds == spec.chunk_seconds
        assert (spec.ingest_segments, spec.flush_buffers) == (0, 0)

    def test_single_job_matches_standalone_simulation(self):
        spec = make_spec(ingest_segments=2, flush_buffers=1)
        sim = ClusterSimulator(1)
        report = sim.run_backup_pipelines([spec], channels_per_node=2)
        stats = simulate_backup_pipeline(
            spec.chunk_seconds,
            spec.lookup_seconds,
            lookup_rpcs=spec.lookup_rpcs,
            flush_after=spec.flush_after,
            flush_seconds=spec.flush_seconds,
            setup_seconds=spec.setup_seconds,
            finish_seconds=spec.finish_seconds,
            ingest_segments=2,
            flush_buffers=1,
            channels=2,
        )
        assert report.makespan_seconds == pytest.approx(stats.elapsed_seconds)
        assert report.index_rpcs == 2

    def test_contended_channels_slow_co_located_jobs(self):
        spec = make_spec(ingest_segments=2, flush_buffers=1)
        sim = ClusterSimulator(1)
        alone = sim.run_backup_pipelines([spec], channels_per_node=1)
        crowd = sim.run_backup_pipelines([spec] * 6, channels_per_node=1)
        assert crowd.makespan_seconds > alone.makespan_seconds
        assert crowd.ingest_rpc_wait_seconds >= alone.ingest_rpc_wait_seconds

    def test_slots_queue_excess_jobs(self):
        spec = make_spec()
        sim = ClusterSimulator(1)
        wide = sim.run_backup_pipelines([spec] * 4, backup_slots=4)
        narrow = sim.run_backup_pipelines([spec] * 4, backup_slots=1)
        assert narrow.makespan_seconds > wide.makespan_seconds
        assert len(narrow.completion_times) == 4

    def test_backup_throughput_dispatches_on_spec_type(self):
        spec = make_spec(ingest_segments=2, flush_buffers=1)
        sim = ClusterSimulator(1)
        via_dispatch = sim.backup_throughput(spec, 2)
        via_run = sim.run_backup_pipelines([spec] * 2).aggregate_throughput_mb_s
        assert via_dispatch == pytest.approx(via_run)
