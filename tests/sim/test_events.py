"""Tests for the discrete-event kernel and the cluster simulator."""

import pytest

from repro.core.cluster import ClusterSimulator, JobSpec
from repro.bench.scaling import slimstore_backup_scaling
from repro.sim.cost_model import CostModel
from repro.sim.events import EventLoop, SlotResource

MB = float(1 << 20)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("late"))
        loop.schedule(1.0, lambda: order.append("early"))
        assert loop.run() == 2.0
        assert order == ["early", "late"]

    def test_ties_break_by_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("first"))
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run()
        assert order == ["first", "second"]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def chain():
            seen.append(loop.now)
            if len(seen) < 3:
                loop.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        assert loop.run() == 3.0
        assert seen == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)


class TestSlotResource:
    def test_grants_up_to_capacity(self):
        loop = EventLoop()
        resource = SlotResource(loop, 2)
        granted = []
        for index in range(3):
            resource.acquire(lambda i=index: granted.append(i))
        loop.run()
        assert granted == [0, 1]
        assert resource.queued == 1

    def test_release_hands_to_waiter(self):
        loop = EventLoop()
        resource = SlotResource(loop, 1)
        log = []

        def holder():
            log.append("holder")
            loop.schedule(5.0, resource.release)

        resource.acquire(holder)
        resource.acquire(lambda: log.append("waiter"))
        loop.run()
        assert log == ["holder", "waiter"]

    def test_over_release_rejected(self):
        loop = EventLoop()
        resource = SlotResource(loop, 1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            SlotResource(EventLoop(), 0)


class TestClusterSimulator:
    def test_single_job_duration(self):
        cluster = ClusterSimulator(1, CostModel())
        job = JobSpec(logical_bytes=MB, cpu_seconds=0.01, network_bytes=0)
        report = cluster.run([job])
        assert report.makespan_seconds == pytest.approx(0.01)
        assert report.aggregate_throughput_mb_s == pytest.approx(100.0)

    def test_parallel_jobs_within_slots(self):
        cluster = ClusterSimulator(1, CostModel(), slots_per_node=4)
        job = JobSpec(MB, 0.01, 0)
        report = cluster.run([job] * 4)
        assert report.makespan_seconds == pytest.approx(0.01)
        assert report.aggregate_throughput_mb_s == pytest.approx(400.0)

    def test_waves_beyond_slots(self):
        cluster = ClusterSimulator(1, CostModel(), slots_per_node=2)
        report = cluster.run([JobSpec(MB, 0.01, 0)] * 4)
        assert report.makespan_seconds == pytest.approx(0.02)

    def test_jobs_spread_over_nodes(self):
        cluster = ClusterSimulator(3, CostModel(), slots_per_node=1)
        report = cluster.run([JobSpec(MB, 0.01, 0)] * 3)
        assert report.makespan_seconds == pytest.approx(0.01)

    def test_nic_contention_slows_network_phase(self):
        model = CostModel()
        cluster = ClusterSimulator(1, model, slots_per_node=8)
        heavy = JobSpec(MB, 0.0001, network_bytes=model.node_nic_bandwidth * 0.01)
        alone = cluster.run([heavy]).makespan_seconds
        crowd = cluster.run([heavy] * 8).makespan_seconds
        assert crowd > 2 * alone

    def test_matches_closed_form_in_linear_regime(self):
        """The DES and the Fig 10 closed form agree where both apply."""
        model = CostModel()
        job_elapsed = 0.02
        for jobs in (1, 6, 24, 72):
            closed = slimstore_backup_scaling(
                MB, job_elapsed, 0, jobs, lnode_count=6, cost_model=model
            )
            cluster = ClusterSimulator(6, model)
            des = cluster.backup_throughput(JobSpec(MB, job_elapsed, 0), jobs)
            assert des == pytest.approx(closed, rel=0.05), jobs

    def test_heterogeneous_jobs(self):
        cluster = ClusterSimulator(2, CostModel(), slots_per_node=1)
        report = cluster.run(
            [JobSpec(MB, 0.03, 0), JobSpec(MB, 0.01, 0), JobSpec(MB, 0.01, 0)]
        )
        # Round-robin: node 0 gets jobs 0 and 2 (serialised behind the
        # 0.03 s job), node 1 gets job 1.
        assert report.makespan_seconds == pytest.approx(0.04)
        assert sorted(report.completion_times) == pytest.approx([0.01, 0.03, 0.04])

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ClusterSimulator(0)
