"""Tests for the bench harness, scaling arithmetic and reporting."""

import pytest

from repro.bench.harness import BackupSeries, VersionStats, run_backup_series
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling import (
    restic_aggregate_throughput,
    slimstore_backup_scaling,
    slimstore_restore_scaling,
)
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown
from repro.workloads.base import BackupFile, DatasetVersion

MB = float(1 << 20)


class _FakeResult:
    def __init__(self, logical: int, stored: int, cpu: float):
        self.logical_bytes = logical
        self.stored_chunk_bytes = stored
        self.breakdown = TimeBreakdown()
        self.breakdown.charge("other", cpu)
        self.counters = Counters()


class TestVersionStats:
    def test_absorb_accumulates(self):
        stats = VersionStats(0)
        stats.absorb(_FakeResult(100, 40, 0.1))
        stats.absorb(_FakeResult(100, 10, 0.1))
        assert stats.logical_bytes == 200
        assert stats.stored_chunk_bytes == 50
        assert stats.dedup_ratio == pytest.approx(0.75)
        assert stats.elapsed_seconds == pytest.approx(0.2)

    def test_empty_stats(self):
        stats = VersionStats(0)
        assert stats.dedup_ratio == 0.0
        assert stats.throughput_mb_s == 0.0


class TestRunBackupSeries:
    def test_per_version_aggregation(self):
        versions = [
            DatasetVersion(0, [BackupFile("a", b"xx"), BackupFile("b", b"yy")]),
            DatasetVersion(1, [BackupFile("a", b"xx")]),
        ]
        calls = []

        def backup(path, data):
            calls.append(path)
            return _FakeResult(len(data), len(data), 0.01)

        series = run_backup_series("sys", backup, versions)
        assert calls == ["a", "b", "a"]
        assert [s.logical_bytes for s in series.versions] == [4, 2]
        assert series.total_logical_bytes() == 6

    def test_mean_throughput_skips_first(self):
        series = BackupSeries("sys")
        slow, fast = VersionStats(0), VersionStats(1)
        slow.absorb(_FakeResult(int(MB), 0, 1.0))
        fast.absorb(_FakeResult(int(MB), 0, 0.1))
        series.versions = [slow, fast]
        assert series.mean_throughput() == pytest.approx(10.0, rel=0.01)
        assert series.mean_throughput(skip_first=False) == pytest.approx(5.5, rel=0.01)


class TestScaling:
    def test_slim_backup_linear_within_slots(self):
        model = CostModel()
        one = slimstore_backup_scaling(MB, 0.01, 0, 1, 6, model)
        twelve = slimstore_backup_scaling(MB, 0.01, 0, 12, 6, model)
        assert twelve == pytest.approx(12 * one, rel=0.01)

    def test_slim_backup_spills_to_more_nodes(self):
        model = CostModel()
        # 72 jobs = 6 nodes x 12 slots: still one wave, fully linear.
        seventy_two = slimstore_backup_scaling(MB, 0.01, 0, 72, 6, model)
        one = slimstore_backup_scaling(MB, 0.01, 0, 1, 6, model)
        assert seventy_two == pytest.approx(72 * one, rel=0.01)

    def test_slim_backup_waves_beyond_capacity(self):
        model = CostModel()
        cap = 6 * model.node_backup_slots
        at_cap = slimstore_backup_scaling(MB, 0.01, 0, cap, 6, model)
        beyond = slimstore_backup_scaling(MB, 0.01, 0, cap + 1, 6, model)
        assert beyond < at_cap

    def test_slim_backup_nic_ceiling(self):
        model = CostModel()
        # Jobs whose upload rate saturates the NIC scale sub-linearly.
        heavy = slimstore_backup_scaling(MB, 0.01, int(MB), 12, 6, model)
        light = slimstore_backup_scaling(MB, 0.01, 0, 12, 6, model)
        assert heavy < light

    def test_slim_restore_slots(self):
        model = CostModel()
        one = slimstore_restore_scaling(MB, 0.01, 0, 1, 6, model)
        full = slimstore_restore_scaling(MB, 0.01, 0, 48, 6, model)
        assert full == pytest.approx(48 * one, rel=0.01)

    def test_restic_caps_at_serial_rate(self):
        job_bytes, elapsed, serial = MB, 0.008, 0.004
        single = restic_aggregate_throughput(job_bytes, elapsed, serial, 1)
        many = restic_aggregate_throughput(job_bytes, elapsed, serial, 100)
        assert many == pytest.approx(job_bytes / serial / MB, rel=0.01)
        assert many < 3 * single

    def test_zero_jobs(self):
        assert restic_aggregate_throughput(MB, 0.01, 0.001, 0) == 0.0
        assert slimstore_backup_scaling(MB, 0.01, 0, 0, 6) == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("Title", ["col", "value"], [["a", 1], ["bbb", 2.5]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "col" in lines[2]
        assert "2.50" in lines[-1]
        # All rows align to the same width.
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_series_columns(self):
        text = format_series(
            "Fig", "x", ["a", "b"], {"s1": [1.0, 2.0], "s2": [3.0]}
        )
        assert "s1" in text and "s2" in text
        assert "-" in text.splitlines()[-1]  # missing value placeholder
