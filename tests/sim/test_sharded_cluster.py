"""Cluster ingest against the sharded index: event sim vs closed form."""

from __future__ import annotations

import pytest

from repro.bench.scaling import sharded_index_drain_seconds
from repro.core.cluster import ClusterSimulator, JobSpec, ShardedIndexSpec
from repro.sim.cost_model import CostModel
from repro.sim.parallel import batched_round_trips, sharded_drain_time

MB = float(1 << 20)


class TestParallelHelpers:
    def test_batched_round_trips_is_ceiling_division(self):
        assert batched_round_trips(0, 256) == 0
        assert batched_round_trips(1, 256) == 1
        assert batched_round_trips(256, 256) == 1
        assert batched_round_trips(257, 256) == 2
        assert batched_round_trips(512, 1) == 512

    def test_batched_round_trips_validates(self):
        with pytest.raises(ValueError):
            batched_round_trips(-1, 4)
        with pytest.raises(ValueError):
            batched_round_trips(4, 0)

    def test_sharded_drain_is_paced_by_the_slowest_shard(self):
        assert sharded_drain_time([3, 7, 2], 0.5) == pytest.approx(3.5)
        assert sharded_drain_time([], 0.5) == 0.0


class TestShardedIndexSpec:
    def test_lookups_spread_uniformly(self):
        spec = ShardedIndexSpec(shard_count=4, batch_size=8)
        assert spec.per_shard_keys(10) == [3, 3, 2, 2]
        assert sum(spec.per_shard_keys(1000)) == 1000

    def test_request_keys_tile_the_shard_share(self):
        spec = ShardedIndexSpec(shard_count=1, batch_size=8)
        assert spec.request_keys(20) == [8, 8, 4]
        assert spec.request_keys(0) == []

    def test_total_requests_shrink_with_batching(self):
        unbatched = ShardedIndexSpec(shard_count=4, batch_size=1)
        batched = ShardedIndexSpec(shard_count=4, batch_size=256)
        assert unbatched.total_requests(1024) == 1024
        assert batched.total_requests(1024) == 4

    def test_validation(self):
        for bad in [
            {"shard_count": 0},
            {"batch_size": 0},
            {"slots_per_shard": 0},
        ]:
            with pytest.raises(ValueError):
                ShardedIndexSpec(**bad)


class TestClusterIndexContention:
    def _job(self, lookups: int) -> JobSpec:
        return JobSpec(
            logical_bytes=MB, cpu_seconds=0.0, network_bytes=0,
            index_lookups=lookups,
        )

    @pytest.mark.parametrize(
        "shards,batch", [(1, 1), (1, 256), (4, 1), (4, 256), (16, 256)]
    )
    def test_makespan_matches_the_closed_form(self, shards, batch):
        model = CostModel()
        cluster = ClusterSimulator(
            4, model, slots_per_node=2,
            index_spec=ShardedIndexSpec(shard_count=shards, batch_size=batch),
        )
        report = cluster.run([self._job(512)] * 8)
        closed = sharded_index_drain_seconds(
            512, 8, shards, batch, cost_model=model
        )
        assert report.makespan_seconds == pytest.approx(closed)

    def test_sharding_and_batching_each_cut_the_makespan(self):
        model = CostModel()

        def makespan(shards, batch):
            cluster = ClusterSimulator(
                4, model, slots_per_node=2,
                index_spec=ShardedIndexSpec(shard_count=shards, batch_size=batch),
            )
            return cluster.run([self._job(512)] * 8).makespan_seconds

        baseline = makespan(1, 1)
        assert makespan(4, 1) < baseline / 2  # sharding alone
        assert makespan(1, 256) < baseline / 2  # batching alone
        assert makespan(4, 256) < makespan(4, 1)
        assert makespan(4, 256) < makespan(1, 256)

    def test_rpc_accounting(self):
        spec = ShardedIndexSpec(shard_count=4, batch_size=256)
        cluster = ClusterSimulator(2, CostModel(), index_spec=spec)
        report = cluster.run([self._job(512)] * 6)
        assert report.index_rpcs == 6 * spec.total_requests(512)

    def test_jobs_without_lookups_skip_the_index(self):
        spec = ShardedIndexSpec(shard_count=4, batch_size=1)
        with_index = ClusterSimulator(1, CostModel(), index_spec=spec)
        without = ClusterSimulator(1, CostModel())
        job = JobSpec(MB, 0.01, 0)
        assert (
            with_index.run([job] * 3).makespan_seconds
            == without.run([job] * 3).makespan_seconds
        )
        assert with_index.run([job] * 3).index_rpcs == 0

    def test_from_backup_result_carries_unique_fps(self):
        class _Breakdown:
            def cpu_seconds(self):
                return 0.25

        class _Result:
            logical_bytes = MB
            uploaded_bytes = MB / 2
            breakdown = _Breakdown()
            unique_fps = [b"\x01" * 20, b"\x02" * 20]

        spec = JobSpec.from_backup_result(_Result())
        assert spec.index_lookups == 2
        assert spec.cpu_seconds == 0.25


class TestCrashModel:
    """Node deaths mid-job: wasted work + recovery, never lost jobs."""

    def _job(self) -> JobSpec:
        return JobSpec(logical_bytes=MB, cpu_seconds=1.0, network_bytes=0)

    def test_crash_adds_wasted_and_recovery_time_exactly(self):
        model = CostModel()
        cluster = ClusterSimulator(1, model, slots_per_node=1)
        baseline = cluster.run([self._job()]).makespan_seconds
        report = cluster.run([self._job()], crashes={0: 0.5})
        # Half the job wasted, one recovery scan, then the full retry.
        expected = 0.5 * baseline + 3 * model.oss_request_latency + baseline
        assert report.makespan_seconds == pytest.approx(expected)
        assert report.crashes_simulated == 1
        assert report.wasted_seconds == pytest.approx(0.5 * baseline)
        assert report.recovery_seconds_total == pytest.approx(
            3 * model.oss_request_latency
        )
        # The job still completes exactly once.
        assert len(report.completion_times) == 1

    def test_explicit_recovery_cost_and_multiple_crashes(self):
        cluster = ClusterSimulator(2, CostModel(), slots_per_node=1)
        jobs = [self._job() for _ in range(4)]
        report = cluster.run(
            jobs, crashes={0: 0.25, 3: 0.75}, recovery_seconds=2.0
        )
        assert report.crashes_simulated == 2
        assert report.recovery_seconds_total == pytest.approx(4.0)
        assert len(report.completion_times) == len(jobs)
        clean = cluster.run(jobs).makespan_seconds
        assert report.makespan_seconds > clean

    def test_crash_arguments_validated(self):
        cluster = ClusterSimulator(1, CostModel())
        with pytest.raises(ValueError):
            cluster.run([self._job()], crashes={1: 0.5})
        with pytest.raises(ValueError):
            cluster.run([self._job()], crashes={0: 1.0})
        with pytest.raises(ValueError):
            cluster.run([self._job()], crashes={0: 0.0})
