"""Seeded arrival processes: determinism, divergence, empirical rates."""

import pytest

from repro.sim.arrivals import (
    Arrival,
    DiurnalProfile,
    PoissonProcess,
    tenant_arrivals,
    tenant_seed,
)


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(-1.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(1.0).arrivals(-1.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(base_rate=-1.0, peak_rate=1.0)
        with pytest.raises(ValueError):
            DiurnalProfile(base_rate=2.0, peak_rate=1.0)  # peak below base
        with pytest.raises(ValueError):
            DiurnalProfile(base_rate=0.1, peak_rate=1.0, period_seconds=0.0)
        with pytest.raises(ValueError):
            DiurnalProfile(base_rate=0.1, peak_rate=1.0, peak_time=1.0)
        with pytest.raises(ValueError):
            DiurnalProfile(base_rate=0.1, peak_rate=1.0, peak_width=0.0)


class TestDeterminism:
    def test_equal_seeds_replay_identical_streams(self):
        a = PoissonProcess(0.7, seed=42).arrivals(500.0)
        b = PoissonProcess(0.7, seed=42).arrivals(500.0)
        assert a == b
        assert len(a) > 0

    def test_different_seeds_diverge(self):
        a = PoissonProcess(0.7, seed=1).arrivals(500.0)
        b = PoissonProcess(0.7, seed=2).arrivals(500.0)
        assert a != b

    def test_zero_rate_is_empty(self):
        assert PoissonProcess(0.0, seed=1).arrivals(1000.0) == []

    def test_arrivals_sorted_within_horizon(self):
        times = PoissonProcess(2.0, seed=9).arrivals(100.0)
        assert times == sorted(times)
        assert all(0.0 <= t < 100.0 for t in times)


class TestEmpiricalRate:
    def test_homogeneous_rate_within_tolerance(self):
        """Over a long horizon the empirical rate converges on the
        configured intensity (Poisson: sd/mean ~ 1/sqrt(n), so 5% is a
        comfortable bound at n ~ 10000)."""
        rate, horizon = 0.5, 20000.0
        count = len(PoissonProcess(rate, seed=3).arrivals(horizon))
        assert count == pytest.approx(rate * horizon, rel=0.05)

    def test_diurnal_peak_concentrates_arrivals(self):
        profile = DiurnalProfile(
            base_rate=0.01, peak_rate=1.0, period_seconds=1000.0,
            peak_time=0.5, peak_width=0.2,
        )
        times = PoissonProcess(profile, seed=4).arrivals(20 * 1000.0)
        in_peak = sum(1 for t in times if 400.0 <= (t % 1000.0) <= 600.0)
        assert in_peak / len(times) > 0.8

    def test_thinned_rate_within_tolerance(self):
        """The accepted stream of the thinning sampler has the profile's
        mean intensity, not the envelope's."""
        profile = DiurnalProfile(
            base_rate=0.2, peak_rate=1.0, period_seconds=1000.0
        )
        horizon = 40_000.0
        expected = sum(profile.rate(t + 0.5) for t in range(int(horizon)))
        count = len(PoissonProcess(profile, seed=5).arrivals(horizon))
        assert count == pytest.approx(expected, rel=0.05)


class TestDiurnalProfile:
    def test_rate_peaks_at_centre(self):
        profile = DiurnalProfile(base_rate=0.1, peak_rate=2.0)
        assert profile.rate(0.5 * 86400.0) == pytest.approx(2.0)
        assert profile.rate(0.0) == pytest.approx(0.1)
        assert profile.max_rate == 2.0

    def test_profile_is_circular(self):
        """A bump centred at the period boundary wraps around."""
        profile = DiurnalProfile(
            base_rate=0.1, peak_rate=2.0, period_seconds=100.0,
            peak_time=0.0, peak_width=0.2,
        )
        assert profile.rate(0.0) == pytest.approx(2.0)
        assert profile.rate(95.0) == pytest.approx(profile.rate(5.0))
        assert profile.rate(50.0) == pytest.approx(0.1)


class TestTenantArrivals:
    def test_merged_schedule_sorted_and_tagged(self):
        schedule = tenant_arrivals({"alice": 0.2, "bob": 0.5}, 500.0, seed=1)
        assert all(isinstance(a, Arrival) for a in schedule)
        assert [a.time for a in schedule] == sorted(a.time for a in schedule)
        assert {a.tenant for a in schedule} == {"alice", "bob"}

    def test_adding_a_tenant_never_perturbs_the_others(self):
        """Each tenant's sub-stream is seeded from (seed, tenant) only."""
        two = tenant_arrivals({"alice": 0.3, "bob": 0.3}, 500.0, seed=7)
        three = tenant_arrivals(
            {"alice": 0.3, "bob": 0.3, "carol": 0.3}, 500.0, seed=7
        )
        assert [a for a in three if a.tenant != "carol"] == two

    def test_distinct_tenants_get_distinct_streams(self):
        schedule = tenant_arrivals({"alice": 0.5, "bob": 0.5}, 500.0, seed=1)
        alice = [a.time for a in schedule if a.tenant == "alice"]
        bob = [a.time for a in schedule if a.tenant == "bob"]
        assert alice != bob
        assert tenant_seed(1, "alice") != tenant_seed(1, "bob")

    def test_per_tenant_profiles(self):
        profile = DiurnalProfile(
            base_rate=0.0, peak_rate=1.0, period_seconds=100.0
        )
        schedule = tenant_arrivals({"alice": profile, "bob": 0.1}, 1000.0, seed=2)
        alice = [a.time % 100.0 for a in schedule if a.tenant == "alice"]
        assert alice  # bursts exist
        assert all(25.0 < phase < 75.0 for phase in alice)  # only in-peak
