"""Tests for the event-driven LAW restore prefetch pipeline."""

import pytest

from repro.core.cluster import ClusterSimulator, RestoreJobSpec
from repro.sim.events import (
    ChannelPool,
    EventLoop,
    RestorePipelineProcess,
    simulate_restore_pipeline,
)
from repro.sim.parallel import prefetched_restore_time


def uniform_trace(reads: int, read_s: float, cpu_s: float):
    """A trace where every record triggers exactly one read."""
    return (
        [read_s] * reads,             # read durations
        list(range(reads)),           # record i blocks on read i
        [cpu_s] * reads,              # per-record CPU
    )


class TestChannelPool:
    def test_hands_out_distinct_ids(self):
        loop = EventLoop()
        pool = ChannelPool(loop, 3)
        granted = []
        for _ in range(3):
            pool.acquire(granted.append)
        loop.run()
        assert sorted(granted) == [0, 1, 2]

    def test_released_channel_is_reused(self):
        loop = EventLoop()
        pool = ChannelPool(loop, 1)
        order = []
        pool.acquire(lambda cid: (order.append(cid), pool.release(cid)))
        pool.acquire(order.append)
        loop.run()
        assert order == [0, 0]

    def test_busy_accounting(self):
        loop = EventLoop()
        pool = ChannelPool(loop, 2)
        pool.occupy(0, 1.5)
        pool.occupy(1, 0.5)
        pool.occupy(0, 1.0)
        assert pool.busy_seconds == [2.5, 0.5]


class TestSerialPipeline:
    def test_zero_threads_matches_closed_form_exactly(self):
        reads, record_reads, cpu = uniform_trace(20, 0.01, 0.002)
        stats = simulate_restore_pipeline(
            reads, record_reads, cpu, threads=0, setup_seconds=0.05
        )
        closed = prefetched_restore_time(sum(cpu), sum(reads), 0)
        assert stats.elapsed_seconds == pytest.approx(0.05 + closed)
        assert stats.stall_count == 20
        assert stats.stall_seconds == pytest.approx(sum(reads))
        assert stats.channel_busy_seconds == []

    def test_demand_reads_add_serially(self):
        reads, record_reads, cpu = uniform_trace(5, 0.01, 0.001)
        demand = [0.0] * 5
        demand[3] = 0.25
        stats = simulate_restore_pipeline(
            reads, record_reads, cpu, threads=0, demand_seconds=demand
        )
        assert stats.demand_seconds == pytest.approx(0.25)
        assert stats.elapsed_seconds == pytest.approx(sum(reads) + sum(cpu) + 0.25)


class TestEventPipelineCrossCheck:
    """The acceptance bound: with whole-container uncontended reads the
    event schedule matches ``max(cpu, download/threads)`` within 1%
    (startup and tail effects shrink as ~1/#reads)."""

    def test_download_bound_within_one_percent(self):
        reads, record_reads, cpu = uniform_trace(200, 0.01, 0.0002)
        for threads in (1, 2, 4, 8):
            stats = simulate_restore_pipeline(reads, record_reads, cpu, threads)
            closed = prefetched_restore_time(sum(cpu), sum(reads), threads)
            assert stats.elapsed_seconds >= closed
            assert stats.elapsed_seconds <= closed * 1.01

    def test_cpu_bound_within_one_percent(self):
        reads, record_reads, cpu = uniform_trace(200, 0.005, 0.02)
        for threads in (2, 4, 8):
            stats = simulate_restore_pipeline(reads, record_reads, cpu, threads)
            closed = prefetched_restore_time(sum(cpu), sum(reads), threads)
            assert stats.elapsed_seconds >= closed
            assert stats.elapsed_seconds <= closed * 1.01

    def test_more_threads_never_slower(self):
        reads, record_reads, cpu = uniform_trace(64, 0.01, 0.001)
        elapsed = [
            simulate_restore_pipeline(reads, record_reads, cpu, t).elapsed_seconds
            for t in (0, 1, 2, 4, 8)
        ]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_channel_busy_sums_to_read_work(self):
        reads, record_reads, cpu = uniform_trace(50, 0.013, 0.001)
        stats = simulate_restore_pipeline(reads, record_reads, cpu, threads=4)
        assert len(stats.channel_busy_seconds) == 4
        assert sum(stats.channel_busy_seconds) == pytest.approx(sum(reads))

    def test_download_bound_job_stalls(self):
        reads, record_reads, cpu = uniform_trace(50, 0.02, 0.0001)
        stats = simulate_restore_pipeline(reads, record_reads, cpu, threads=1)
        assert stats.stall_count > 0
        assert stats.stall_seconds > 0

    def test_cache_hit_records_never_stall(self):
        # Only every fifth record triggers a read; the rest are hits.
        reads = [0.01] * 10
        record_reads = [(i // 5) if i % 5 == 0 else -1 for i in range(50)]
        cpu = [0.004] * 50
        stats = simulate_restore_pipeline(reads, record_reads, cpu, threads=2)
        # CPU (0.2s) dominates download (0.1s over 2 channels): only the
        # first read can stall the consumer.
        assert stats.stall_count <= 1

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            simulate_restore_pipeline([0.1], [0], [0.1], threads=-1)
        with pytest.raises(ValueError):
            simulate_restore_pipeline([0.1], [5], [0.1], threads=1)
        with pytest.raises(ValueError):
            simulate_restore_pipeline([0.1], [0, -1], [0.1], threads=1)


class TestSharedPoolContention:
    def test_two_jobs_share_channels(self):
        reads, record_reads, cpu = uniform_trace(40, 0.01, 0.0001)

        def run(jobs: int) -> float:
            loop = EventLoop()
            pool = ChannelPool(loop, 2)
            for _ in range(jobs):
                RestorePipelineProcess(
                    loop, pool, reads, record_reads, cpu, max_parallel=2
                ).start()
            return loop.run()

        alone = run(1)
        contended = run(2)
        # Both jobs want both channels: the pair takes about twice as
        # long as one job, and strictly longer than the uncontended run.
        assert contended > alone * 1.5
        assert contended < alone * 2.2


class TestClusterRestores:
    def job(self, reads=40, read_s=0.01, cpu_s=0.001, threads=4) -> RestoreJobSpec:
        read_seconds, record_reads, cpu = uniform_trace(reads, read_s, cpu_s)
        return RestoreJobSpec(
            logical_bytes=float(reads * 64 * 1024),
            read_seconds=tuple(read_seconds),
            record_reads=tuple(record_reads),
            record_cpu=tuple(cpu),
            demand_seconds=tuple([0.0] * reads),
            setup_seconds=0.01,
            prefetch_threads=threads,
        )

    def test_single_job_matches_standalone_pipeline(self):
        job = self.job()
        sim = ClusterSimulator(1)
        report = sim.run_restores([job])
        stats = simulate_restore_pipeline(
            job.read_seconds,
            job.record_reads,
            job.record_cpu,
            job.prefetch_threads,
            demand_seconds=job.demand_seconds,
            setup_seconds=job.setup_seconds,
        )
        assert report.makespan_seconds == pytest.approx(stats.elapsed_seconds)

    def test_channel_contention_slows_concurrent_jobs(self):
        sim = ClusterSimulator(1)
        alone = sim.run_restores([self.job(threads=8)], channels_per_node=16)
        # 4 download-bound jobs, each wanting 8 channels, share 16.
        crowd = sim.run_restores([self.job(threads=8)] * 4, channels_per_node=16)
        assert crowd.makespan_seconds > alone.makespan_seconds * 1.5
        assert crowd.prefetch_stalls > alone.prefetch_stalls

    def test_restore_slots_bound_concurrency(self):
        sim = ClusterSimulator(1)
        jobs = [self.job(threads=1)] * 4
        two_slots = sim.run_restores(jobs, restore_slots=2, channels_per_node=16)
        four_slots = sim.run_restores(jobs, restore_slots=4, channels_per_node=16)
        assert two_slots.makespan_seconds > four_slots.makespan_seconds

    def test_more_nodes_scale_throughput(self):
        jobs = [self.job(threads=4)] * 6
        one = ClusterSimulator(1).run_restores(jobs, channels_per_node=8)
        three = ClusterSimulator(3).run_restores(jobs, channels_per_node=8)
        assert three.makespan_seconds < one.makespan_seconds
        assert three.aggregate_throughput_mb_s > one.aggregate_throughput_mb_s
        assert len(three.node_channel_busy_seconds) == 3

    def test_zero_thread_jobs_serialise(self):
        job = self.job(threads=0)
        report = ClusterSimulator(1).run_restores([job])
        expected = (
            job.setup_seconds
            + sum(job.read_seconds)
            + sum(job.record_cpu)
            + sum(job.demand_seconds)
        )
        assert report.makespan_seconds == pytest.approx(expected)

    def test_channel_busy_recorded_per_node(self):
        report = ClusterSimulator(2).run_restores(
            [self.job()] * 2, channels_per_node=4
        )
        assert len(report.node_channel_busy_seconds) == 2
        total_read_work = 2 * sum(self.job().read_seconds)
        busy = sum(sum(node) for node in report.node_channel_busy_seconds)
        assert busy == pytest.approx(total_read_work)
