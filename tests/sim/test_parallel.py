"""Tests for the parallelism arithmetic."""

import pytest

from repro.sim.parallel import (
    contended_time,
    parallel_channel_time,
    pipelined_time,
    serialized_time,
)


class TestPipelines:
    def test_pipelined_is_max(self):
        assert pipelined_time([1.0, 3.0, 2.0]) == 3.0

    def test_pipelined_empty_is_zero(self):
        assert pipelined_time([]) == 0.0

    def test_pipelined_rejects_negative(self):
        with pytest.raises(ValueError):
            pipelined_time([1.0, -1.0])

    def test_serialized_is_sum(self):
        assert serialized_time([1.0, 3.0, 2.0]) == 6.0

    def test_serialized_rejects_negative(self):
        with pytest.raises(ValueError):
            serialized_time([-1.0])


class TestParallelChannels:
    def test_linear_scaling(self):
        single = parallel_channel_time(100.0, 10.0, 1)
        four = parallel_channel_time(100.0, 10.0, 4)
        assert four == pytest.approx(single / 4)

    def test_cap_limits_aggregate(self):
        capped = parallel_channel_time(100.0, 10.0, 100, cap=20.0)
        assert capped == pytest.approx(100.0 / 20.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            parallel_channel_time(100.0, 10.0, 0)
        with pytest.raises(ValueError):
            parallel_channel_time(100.0, 0.0, 1)


class TestContention:
    def test_fits_in_one_wave(self):
        assert contended_time(2.0, jobs=3, slots=4) == 2.0

    def test_queues_in_waves(self):
        assert contended_time(2.0, jobs=9, slots=4) == 6.0

    def test_zero_jobs(self):
        assert contended_time(2.0, jobs=0, slots=4) == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            contended_time(1.0, jobs=-1, slots=2)
        with pytest.raises(ValueError):
            contended_time(1.0, jobs=1, slots=0)
