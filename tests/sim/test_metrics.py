"""Tests for time breakdowns and counters."""

import pytest

from repro.sim.metrics import CPU_CATEGORIES, Counters, TimeBreakdown


class TestTimeBreakdown:
    def test_charge_accumulates(self):
        breakdown = TimeBreakdown()
        breakdown.charge("chunking", 0.5)
        breakdown.charge("chunking", 0.25)
        assert breakdown.chunking == pytest.approx(0.75)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().charge("tea_break", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().charge("other", -0.1)

    def test_cpu_seconds_sums_cpu_categories(self):
        breakdown = TimeBreakdown()
        for index, category in enumerate(CPU_CATEGORIES, start=1):
            breakdown.charge(category, float(index))
        assert breakdown.cpu_seconds() == pytest.approx(sum(range(1, 5)))

    def test_network_not_counted_as_cpu(self):
        breakdown = TimeBreakdown()
        breakdown.charge("upload", 3.0)
        assert breakdown.cpu_seconds() == 0.0
        assert breakdown.network_seconds() == 3.0

    def test_pipelined_elapsed_is_max_of_sides(self):
        breakdown = TimeBreakdown()
        breakdown.charge("chunking", 2.0)
        breakdown.charge("upload", 5.0)
        breakdown.charge("download", 1.0)
        assert breakdown.elapsed_pipelined() == 5.0

    def test_pipelined_full_duplex(self):
        breakdown = TimeBreakdown()
        breakdown.charge("upload", 2.0)
        breakdown.charge("download", 3.0)
        # Upload and download overlap; the max wins, not the sum.
        assert breakdown.elapsed_pipelined() == 3.0

    def test_serialized_elapsed_is_sum(self):
        breakdown = TimeBreakdown()
        breakdown.charge("chunking", 2.0)
        breakdown.charge("upload", 5.0)
        assert breakdown.elapsed_serialized() == 7.0

    def test_bottleneck_flip(self):
        breakdown = TimeBreakdown()
        breakdown.charge("upload", 5.0)
        assert breakdown.bottleneck() == "network"
        breakdown.charge("fingerprinting", 6.0)
        assert breakdown.bottleneck() == "cpu"

    def test_cpu_shares_sum_to_one(self):
        breakdown = TimeBreakdown()
        breakdown.charge("chunking", 1.0)
        breakdown.charge("fingerprinting", 3.0)
        shares = breakdown.cpu_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["fingerprinting"] == pytest.approx(0.75)

    def test_cpu_shares_zero_when_empty(self):
        assert all(v == 0.0 for v in TimeBreakdown().cpu_shares().values())

    def test_merged_with(self):
        left = TimeBreakdown()
        left.charge("chunking", 1.0)
        right = TimeBreakdown()
        right.charge("chunking", 2.0)
        right.charge("upload", 4.0)
        merged = left.merged_with(right)
        assert merged.chunking == 3.0
        assert merged.upload == 4.0
        # Inputs untouched.
        assert left.chunking == 1.0


class TestCounters:
    def test_add_and_get(self):
        counters = Counters()
        counters.add("chunks")
        counters.add("chunks", 4)
        assert counters.get("chunks") == 5

    def test_unknown_counter_is_zero(self):
        assert Counters().get("never_seen") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counters().add("chunks", -1)

    def test_merged_with(self):
        left = Counters()
        left.add("a", 1)
        right = Counters()
        right.add("a", 2)
        right.add("b", 3)
        merged = left.merged_with(right)
        assert merged.get("a") == 3
        assert merged.get("b") == 3
        assert left.get("a") == 1

    def test_as_dict(self):
        counters = Counters()
        counters.add("x", 2)
        assert counters.as_dict() == {"x": 2}
